//! Spawn, coordinate and join the worker threads.

use crossbeam::channel::unbounded;

use sa_core::screening::PartitionMap;
use sa_ir::Program;
use sa_machine::{MachineConfig, Network, NetworkTopology, PartitionScheme, Stats};
use sa_mem::SaArray;

use crate::net::Msg;
use crate::worker::{WaitObs, Worker, WorkerResult, WorkerSpec};

/// Configuration of a real-thread run (the machine parameters that matter
/// to the runtime; timing cost models remain simulator-side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Number of worker threads (PEs).
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Per-PE cache size in elements (0 disables caching).
    pub cache_elems: usize,
    /// Page placement scheme.
    pub partition: PartitionScheme,
    /// Interconnect topology for hop and link-load accounting. The real
    /// threads still talk over channels; the topology's [`sa_machine::LinkModel`]
    /// prices each modeled message exactly like the counting simulator.
    pub network: NetworkTopology,
}

impl RuntimeConfig {
    /// The paper's machine: modulo placement, 256-element cache.
    pub fn paper(n_pes: usize, page_size: usize) -> Self {
        RuntimeConfig {
            n_pes,
            page_size,
            cache_elems: 256,
            partition: PartitionScheme::Modulo,
            network: NetworkTopology::Ideal,
        }
    }

    /// Adopt the counting simulator's parameters.
    pub fn from_machine(cfg: &MachineConfig) -> Self {
        RuntimeConfig {
            n_pes: cfg.n_pes,
            page_size: cfg.page_size,
            cache_elems: cfg.cache_elems,
            partition: cfg.partition,
            network: cfg.network,
        }
    }

    /// The equivalent counting-simulator configuration.
    pub fn to_machine(&self) -> MachineConfig {
        MachineConfig::new(self.n_pes, self.page_size)
            .with_cache_elems(self.cache_elems)
            .with_partition(self.partition)
            .with_network(self.network)
    }

    /// Validate the configuration (delegates to [`MachineConfig::validate`],
    /// so the runtime and the simulator reject exactly the same configs).
    pub fn validate(&self) -> Result<(), sa_machine::ConfigError> {
        self.to_machine().validate()
    }

    /// Cache capacity in pages. Only meaningful on a validated config —
    /// zero page sizes are rejected by [`RuntimeConfig::validate`] rather
    /// than silently treated as "no cache".
    fn cache_pages(&self) -> usize {
        debug_assert!(self.page_size > 0, "cache_pages on an unvalidated config");
        self.cache_elems / self.page_size
    }
}

/// Runtime failures.
#[derive(Debug)]
pub enum RuntimeError {
    /// Bad configuration.
    InvalidConfig(String),
    /// The program has a shape the worker protocol cannot execute (see
    /// [`unsupported_reason`]); detected *before* any thread spawns, so an
    /// unsupported grid point fails soft instead of aborting a sweep.
    Unsupported(String),
    /// A worker thread panicked (a semantic violation such as a double
    /// write, or an internal bug); the payload is its panic message.
    WorkerPanicked(String),
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::InvalidConfig(m) => write!(f, "invalid runtime config: {m}"),
            RuntimeError::Unsupported(m) => write!(f, "unsupported program: {m}"),
            RuntimeError::WorkerPanicked(m) => write!(f, "worker panicked: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Why `program` cannot run on the thread runtime, or `None` if it can.
///
/// The worker protocol resolves an indirect statement anchor (`A(P(i)) = …`)
/// by reading the index array `P` — from a static mirror when `P` is fully
/// initialized, or over [`crate::net::Msg::IndirectFetch`] when `P` was
/// produced by an *earlier* nest (its single assignment is then ordered
/// before this nest by SSA sequencing, so deferred replies always arrive).
/// Two shapes break that ordering and are rejected up front:
///
/// * an index array written **in the same nest** that gathers through it —
///   ownership would depend on intra-nest timing, a genuinely dynamic case;
/// * an index array that is neither statically initialized nor written by
///   any earlier nest at its current generation — resolution could only
///   block on cells no one will produce.
///
/// The check is per *array*, not per cell: a program whose earlier nests
/// write an index array only partially — or whose static initialization is
/// only a [`sa_ir::program::ArrayInit::Prefix`] — passes here but errors
/// during execution
/// if a lookup lands on an undefined cell: the failing worker broadcasts
/// an abort (locally detected reads immediately; remote requests once
/// their owner runs out of program), and `execute` surfaces it as a typed
/// [`RuntimeError::WorkerPanicked`], the same class of failure the
/// reference interpreter reports as a `ReadUndefined`.
pub fn unsupported_reason(program: &Program) -> Option<String> {
    use sa_ir::analysis::anchor_index_arrays;
    use sa_ir::program::{ArrayInit, Phase};

    // Per array: is it resolvable before the nest currently being scanned?
    // `Prefix` counts — its defined cells live in the owners' frames and
    // resolve over `IndirectFetch` like any partially produced array.
    let mut statically_init: Vec<bool> = program
        .arrays
        .iter()
        .map(|d| !matches!(d.init, ArrayInit::Undefined))
        .collect();
    let mut written_earlier = vec![false; program.arrays.len()];
    for phase in &program.phases {
        match phase {
            Phase::Reinit(id) => {
                // A re-initialized array is undefined again until rewritten.
                statically_init[id.0] = false;
                written_earlier[id.0] = false;
            }
            Phase::Loop(nest) => {
                let written_here = nest.written_arrays();
                for stmt in &nest.body {
                    for base in anchor_index_arrays(stmt) {
                        let name = &program.array(base).name;
                        if written_here.contains(&base) {
                            return Some(format!(
                                "nest `{}` gathers its statement anchor through index array \
                                 `{name}`, which the same nest produces — ownership would \
                                 depend on intra-nest timing",
                                nest.label
                            ));
                        }
                        if !statically_init[base.0] && !written_earlier[base.0] {
                            return Some(format!(
                                "nest `{}` anchors through index array `{name}`, which is \
                                 neither statically initialized nor produced by an earlier \
                                 nest",
                                nest.label
                            ));
                        }
                    }
                }
                for id in written_here {
                    written_earlier[id.0] = true;
                }
            }
        }
    }
    None
}

/// Result of a real-thread run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Aggregated access statistics (same categories as the simulator).
    pub stats: Stats,
    /// Final array contents assembled from the workers' frames.
    pub arrays: Vec<SaArray<f64>>,
    /// Final reduction values.
    pub scalars: Vec<f64>,
    /// Total messages sent across all workers — *everything* on the wire,
    /// including the categories below that the counting simulator's
    /// message model does not charge.
    pub messages: u64,
    /// Scalar-result broadcast messages (the simulator's §9 model makes the
    /// result "implicitly available" after collection; the runtime really
    /// sends it).
    pub broadcast_messages: u64,
    /// Indirect-anchor resolution messages (the simulator resolves anchors
    /// with an uncounted peek; the runtime really fetches index pages).
    pub resolve_messages: u64,
    /// Re-initialization barrier-hardening messages (`ReinitAck`/`ReinitGo`
    /// — the second §5 round that keeps released PEs from racing ahead of
    /// still-syncing peers; the simulator's barrier is instantaneous and
    /// its §5 model charges only the request/release rounds).
    pub sync_messages: u64,
    /// Total hop traversals of the *modeled* traffic (remote fetches,
    /// reduction partials, §5 request/release rounds) priced by the
    /// configured topology's [`sa_machine::LinkModel`] — the same events
    /// the counting simulator routes, so the two engines certify equal.
    pub hops: u64,
    /// Heaviest directed-link traffic of the modeled messages (the
    /// contention bottleneck under the configured topology).
    pub max_link_load: u64,
    /// Every realized read-after-write wait across all workers: reads whose
    /// reply the owner had to defer until the producing write landed. In
    /// debug builds [`execute`] asserts each of these is covered by an edge
    /// of `sa-lint`'s static dependence graph
    /// ([`sa_lint::DepGraph::covers_wait`]) — the runtime-side half of the
    /// deadlock pass's soundness argument.
    pub wait_edges: Vec<WaitObs>,
}

impl RuntimeReport {
    /// Messages under the counting simulator's model — total wire traffic
    /// minus scalar broadcasts, anchor-resolution traffic, and barrier
    /// sync rounds, the mechanisms the simulator performs for free. This
    /// is the number comparable to `SimReport::network_messages`, and what
    /// [`crate::ThreadOracle`] reports.
    pub fn modeled_messages(&self) -> u64 {
        self.messages - self.broadcast_messages - self.resolve_messages - self.sync_messages
    }
}

/// Execute `program` on `cfg.n_pes` real threads.
pub fn execute(program: &Program, cfg: &RuntimeConfig) -> Result<RuntimeReport, RuntimeError> {
    cfg.validate()
        .map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
    if let Some(reason) = unsupported_reason(program) {
        return Err(RuntimeError::Unsupported(reason));
    }
    let machine_cfg = cfg.to_machine();
    let map = PartitionMap::new(program, &machine_cfg);

    let mut txs = Vec::with_capacity(cfg.n_pes);
    let mut rxs = Vec::with_capacity(cfg.n_pes);
    for _ in 0..cfg.n_pes {
        let (tx, rx) = unbounded::<Msg>();
        txs.push(tx);
        rxs.push(rx);
    }
    let (done_tx, done_rx) = unbounded::<usize>();
    let mirrors = crate::worker::static_mirrors(program);

    let results: Result<Vec<WorkerResult>, RuntimeError> = std::thread::scope(|s| {
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(me, inbox)| {
                let spec = WorkerSpec {
                    me,
                    n_pes: cfg.n_pes,
                    page_size: cfg.page_size,
                    cache_pages: cfg.cache_pages(),
                    network: cfg.network,
                    inbox,
                    peers: txs.clone(),
                    mirrors: mirrors.clone(),
                };
                let map = map.clone();
                let done = done_tx.clone();
                s.spawn(move || Worker::new(program, map, spec).run(&done))
            })
            .collect();
        // Only the workers hold completion senders: if they all unwind
        // (a worker's abort broadcast takes its peers down with it), the
        // recv below errors instead of blocking forever.
        drop(done_tx);
        // Workers stay alive (serving remote reads) until everyone is done.
        let mut all_done = true;
        for _ in 0..cfg.n_pes {
            if done_rx.recv().is_err() {
                all_done = false;
                break;
            }
        }
        for tx in &txs {
            let _ = tx.send(Msg::Shutdown);
        }
        // Join everyone; a panicked worker's payload (the abort reason)
        // beats the generic early-exit diagnosis.
        let mut out = Vec::with_capacity(cfg.n_pes);
        let mut first_panic: Option<String> = None;
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(e) => {
                    if first_panic.is_none() {
                        let msg = e
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "unknown panic".into());
                        first_panic = Some(msg);
                    }
                }
            }
        }
        match first_panic {
            Some(msg) => Err(RuntimeError::WorkerPanicked(msg)),
            None if !all_done => Err(RuntimeError::WorkerPanicked(
                "a worker exited before finishing".into(),
            )),
            None => Ok(out),
        }
    });
    let results = results?;

    // Assemble global arrays from the owned frames.
    let mut arrays: Vec<SaArray<f64>> = program
        .arrays
        .iter()
        .map(|d| SaArray::new(d.name.clone(), d.len()))
        .collect();
    let mut stats = Stats::new(cfg.n_pes);
    // Per-worker accounting blocks merge exactly like the replay engine's
    // shards: network arithmetic is purely additive.
    let mut net = Network::new(cfg.network, cfg.n_pes);
    let mut messages = 0u64;
    let mut broadcast_messages = 0u64;
    let mut resolve_messages = 0u64;
    let mut sync_messages = 0u64;
    let mut wait_edges: Vec<WaitObs> = Vec::new();
    for (pe, r) in results.iter().enumerate() {
        stats.per_pe[pe] = r.stats.counters;
        stats.page_fetches += r.stats.page_fetches;
        stats.partial_refetches += r.stats.partial_refetches;
        stats.reinit_messages += r.stats.reinit_messages;
        stats.reduction_messages += r.stats.reduction_messages;
        net.merge(&r.net);
        messages += r.stats.messages_sent;
        broadcast_messages += r.stats.broadcast_messages;
        resolve_messages += r.stats.resolve_messages;
        sync_messages += r.stats.sync_messages;
        wait_edges.extend(r.wait_edges.iter().copied());
        for (&(a, page), frame) in &r.frames {
            let start = page * cfg.page_size;
            for off in frame.fill().iter_set() {
                arrays[a]
                    .write(start + off, frame.values()[off])
                    .expect("frames are disjoint across owners");
            }
        }
    }
    let scalars = results
        .first()
        .map(|r| r.scalars.clone())
        .unwrap_or_default();
    // Debug-mode soundness cross-check: every wait the machine *realized*
    // must be predicted by the static dependence graph the deadlock pass
    // (SA008) reasons over. A miss here means the static graph is not a
    // superset of the runtime's wait structure — its proofs would be built
    // on a hole.
    #[cfg(debug_assertions)]
    {
        let graph = sa_lint::DepGraph::build(program);
        for w in &wait_edges {
            assert!(
                graph.covers_wait(
                    w.phase,
                    w.stmt,
                    sa_ir::ArrayId(w.array),
                    w.generation as usize
                ),
                "runtime wait at phase {} stmt {} on `{}`#{} (addr {}) has no \
                 covering static dependence edge",
                w.phase,
                w.stmt,
                program.array(sa_ir::ArrayId(w.array)).name,
                w.generation,
                w.addr,
            );
        }
    }
    Ok(RuntimeReport {
        stats,
        arrays,
        scalars,
        messages,
        broadcast_messages,
        resolve_messages,
        sync_messages,
        hops: net.hops,
        max_link_load: net.max_link_load(),
        wait_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_ir::index::iv;
    use sa_ir::{interpret, InitPattern, ProgramBuilder, ProgramResult};

    fn check_against_reference(program: &Program, cfg: &RuntimeConfig) {
        let golden = interpret(program).expect("reference runs");
        let rep = execute(program, cfg).expect("runtime runs");
        let got = ProgramResult {
            arrays: rep.arrays,
            scalars: rep.scalars,
            writes: 0,
            reads: 0,
        };
        golden
            .assert_matches(&got, 1e-9)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn map_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new("map");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("m", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 2.0 + 1.0);
        });
        b.finish()
    }

    #[test]
    fn matched_map_runs_on_many_thread_counts() {
        let p = map_program(300);
        for n in [1usize, 2, 4, 7] {
            check_against_reference(&p, &RuntimeConfig::paper(n, 32));
        }
    }

    #[test]
    fn cross_pe_recurrence_pipelines_via_deferred_reads() {
        // X(i) = Z(i)*(Y(i) - X(i-1)) — K5's chain: PE k+1 blocks on the
        // last element of PE k's page until it is produced.
        let n = 257;
        let mut b = ProgramBuilder::new("chain");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let z = b.input("Z", &[n], InitPattern::Harmonic);
        let x = b.array_with(
            "X",
            &[n],
            sa_ir::program::ArrayInit::Prefix {
                pattern: InitPattern::Const(0.3),
                len: 1,
            },
        );
        b.nest("chain", &[("i", 1, n as i64 - 1)], |nb| {
            nb.assign(
                x,
                [iv(0)],
                nb.read(z, [iv(0)]) * (nb.read(y, [iv(0)]) - nb.read(x, [iv(0).plus(-1)])),
            );
        });
        let p = b.finish();
        for n_pes in [1usize, 3, 8] {
            check_against_reference(&p, &RuntimeConfig::paper(n_pes, 32));
        }
        // The pipelining is visible in the wait trace: with several PEs,
        // page-boundary reads of X really defer, and each observed wait is
        // covered by the static dependence graph (X's self-edge).
        let rep = execute(&p, &RuntimeConfig::paper(8, 32)).unwrap();
        assert!(!rep.wait_edges.is_empty(), "the chain must realize waits");
        let g = sa_lint::DepGraph::build(&p);
        for w in &rep.wait_edges {
            assert_eq!((w.array, w.generation), (x.0, 0));
            assert!(g.covers_wait(w.phase, w.stmt, x, w.generation as usize));
        }
    }

    #[test]
    fn reduction_collects_at_host_and_broadcasts() {
        let n = 200;
        let mut b = ProgramBuilder::new("dotchain");
        let y = b.input(
            "Y",
            &[n],
            InitPattern::Linear {
                base: 1.0,
                step: 0.0,
            },
        );
        let x = b.output("X", &[n]);
        let s = b.scalar("s");
        b.nest("sum", &[("k", 0, n as i64 - 1)], |nb| {
            nb.reduce(s, sa_ir::ReduceOp::Sum, nb.read(y, [iv(0)]));
        });
        // Consumers on every PE read the broadcast scalar.
        b.nest("use", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.scalar_value(s) + nb.read(y, [iv(0)]));
        });
        let p = b.finish();
        for n_pes in [1usize, 4, 6] {
            let rep = execute(&p, &RuntimeConfig::paper(n_pes, 32)).unwrap();
            assert_eq!(rep.scalars[0], 200.0);
            check_against_reference(&p, &RuntimeConfig::paper(n_pes, 32));
        }
    }

    #[test]
    fn reinit_protocol_runs_between_generations() {
        let n = 128;
        let mut b = ProgramBuilder::new("gen");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("g0", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]));
        });
        b.reinit(x);
        b.nest("g1", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 5.0);
        });
        let p = b.finish();
        let cfg = RuntimeConfig::paper(4, 16);
        let rep = execute(&p, &cfg).unwrap();
        // §5 message count: (N-1) requests + (N-1) releases; the ack/go
        // hardening round is tallied separately, outside the modeled count.
        assert_eq!(rep.stats.reinit_messages, 6);
        assert_eq!(rep.sync_messages, 6);
        check_against_reference(&p, &cfg);
    }

    #[test]
    fn released_pes_cannot_race_still_syncing_peers() {
        // Post-barrier work that *immediately* remote-reads next-generation
        // cells other PEs produce: X is re-initialized, then the very next
        // nest both rewrites X and cross-reads it reversed (X(n-1-k) is
        // modulo-remote for every k when n ≡ 0 mod 4). A one-round release
        // would let a fast PE's fetch land on a peer still blocked inside
        // the barrier, which would misread it as a deadlocked pre-barrier
        // reader and abort a valid run (or, in debug builds, trip the
        // generation assert). Stress the window across repeated runs —
        // each iteration re-races the release broadcast against the first
        // post-barrier fetches.
        let n = 64usize;
        let rev = sa_ir::index::AffineIndex::scaled_var(-1, 0).plus(n as i64 - 1);
        let mut b = ProgramBuilder::new("race");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        let w = b.output("W", &[n]);
        b.nest("g0", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]));
        });
        b.reinit(x);
        b.nest("g1", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0)]) * 5.0);
        });
        b.nest("g2", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(w, [iv(0)], nb.read(x, [rev.clone()]) + nb.read(y, [iv(0)]));
        });
        let p = b.finish();
        for _ in 0..100 {
            check_against_reference(&p, &RuntimeConfig::paper(4, 4));
        }
    }

    #[test]
    fn stats_are_plausible_and_conserved() {
        let p = map_program(1024);
        let rep = execute(&p, &RuntimeConfig::paper(4, 32)).unwrap();
        let s = &rep.stats;
        assert_eq!(s.writes(), 1024);
        assert_eq!(s.total_reads(), 1024);
        // Matched loop: all local.
        assert_eq!(s.remote_reads(), 0);
        assert_eq!(rep.messages, 0);
    }

    #[test]
    fn skewed_loop_message_count_matches_fetches() {
        let n = 512;
        let mut b = ProgramBuilder::new("skew");
        let y = b.input("Y", &[n + 16], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(11)]));
        });
        let p = b.finish();
        let rep = execute(&p, &RuntimeConfig::paper(4, 32)).unwrap();
        assert!(rep.stats.remote_reads() > 0);
        assert_eq!(rep.stats.page_fetches, rep.stats.remote_reads());
        // request + reply per fetch (read-only inputs: replies immediate).
        assert_eq!(rep.messages, 2 * rep.stats.page_fetches);
        // With the cache, boundary crossings collapse to ~1 fetch per page.
        assert!(rep.stats.remote_reads() <= (n as u64 / 32) * 2);
    }

    #[test]
    fn scatter_through_a_permutation_matches_reference() {
        // X(P(k)) = 3*Y(k): the indirect statement anchor — every worker
        // resolves P(k) from the static mirror, the owner of the *resolved*
        // address executes.
        let n = 200;
        let mut b = ProgramBuilder::new("scatter");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let p = b.input("P", &[n], InitPattern::Permutation { seed: 9 });
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign_indirect(x, p, iv(0), nb.read(y, [iv(0)]) * 3.0);
        });
        let prog = b.finish();
        for n_pes in [1usize, 2, 5, 8] {
            check_against_reference(&prog, &RuntimeConfig::paper(n_pes, 16));
        }
    }

    #[test]
    fn prefix_initialized_index_array_resolves_over_messages() {
        // P's static image is only a prefix — no worker-local mirror gets
        // materialized — but every lookup lands inside the defined prefix:
        // the preflight must let it through and resolution goes over
        // IndirectFetch against the owners' prefix-initialized frames.
        let n = 96usize;
        let mut b = ProgramBuilder::new("prefix-scatter");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let p = b.array_with(
            "P",
            &[n + 8],
            sa_ir::program::ArrayInit::Prefix {
                pattern: InitPattern::Permutation { seed: 5 },
                len: n,
            },
        );
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign_indirect(x, p, iv(0), nb.read(y, [iv(0)]) * 2.0);
        });
        let prog = b.finish();
        assert_eq!(unsupported_reason(&prog), None);
        for n_pes in [1usize, 3, 4] {
            let rep = execute(&prog, &RuntimeConfig::paper(n_pes, 16)).unwrap();
            if n_pes > 1 {
                assert!(
                    rep.resolve_messages > 0,
                    "prefix arrays have no mirror, so resolution must message"
                );
            }
            check_against_reference(&prog, &RuntimeConfig::paper(n_pes, 16));
        }
    }

    #[test]
    fn dynamic_index_array_from_an_earlier_nest_resolves_over_messages() {
        // P is *produced* (identity-reversal written by nest g0), then used
        // as the scatter anchor in g1: resolution goes through
        // IndirectFetch traffic instead of the static mirror.
        let n = 96;
        let mut b = ProgramBuilder::new("dyn-scatter");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let p = b.output("P", &[n]);
        let x = b.output("X", &[n]);
        b.nest("g0", &[("k", 0, n as i64 - 1)], |nb| {
            // P(k) = (n-1) - k, a permutation computed at run time.
            nb.assign(
                p,
                [iv(0)],
                sa_ir::Expr::Const(n as f64 - 1.0) - sa_ir::Expr::LoopVar(0),
            );
        });
        b.nest("g1", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign_indirect(x, p, iv(0), nb.read(y, [iv(0)]) + 1.0);
        });
        let prog = b.finish();
        for n_pes in [1usize, 3, 4] {
            let rep = execute(&prog, &RuntimeConfig::paper(n_pes, 16)).unwrap();
            check_against_reference(&prog, &RuntimeConfig::paper(n_pes, 16));
            if n_pes > 1 {
                assert!(
                    rep.resolve_messages > 0,
                    "dynamic anchors must resolve over the wire"
                );
                // Resolution traffic is excluded from the modeled count.
                assert_eq!(rep.modeled_messages() + rep.resolve_messages, rep.messages);
            } else {
                assert_eq!(rep.resolve_messages, 0, "1 PE owns everything");
            }
        }
    }

    #[test]
    fn static_anchor_resolution_is_message_free() {
        let n = 128;
        let mut b = ProgramBuilder::new("scatter");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let p = b.input("P", &[n], InitPattern::Permutation { seed: 4 });
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign_indirect(x, p, iv(0), nb.read(y, [iv(0)]));
        });
        let prog = b.finish();
        let rep = execute(&prog, &RuntimeConfig::paper(4, 16)).unwrap();
        assert_eq!(
            rep.resolve_messages, 0,
            "statically initialized index arrays resolve from the mirror"
        );
    }

    #[test]
    fn partially_defined_index_array_errors_instead_of_hanging() {
        // P passes the per-array pre-flight (an earlier nest *does* write
        // it) but covers only half its cells, so anchor resolution hits an
        // undefined cell at run time. The abort protocol must tear the run
        // down into a typed error — no panic-and-deadlock.
        let n = 64usize;
        let mut b = ProgramBuilder::new("partial-idx");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let p = b.output("P", &[n]);
        let x = b.output("X", &[n]);
        b.nest("half", &[("k", 0, n as i64 / 2 - 1)], |nb| {
            nb.assign(p, [iv(0)], sa_ir::Expr::LoopVar(0));
        });
        b.nest("gather", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign_indirect(x, p, iv(0), nb.read(y, [iv(0)]));
        });
        let prog = b.finish();
        assert_eq!(unsupported_reason(&prog), None, "per-array check passes");
        for n_pes in [1usize, 2, 4] {
            let err =
                execute(&prog, &RuntimeConfig::paper(n_pes, 16)).expect_err("must fail, not hang");
            let msg = err.to_string();
            assert!(
                matches!(err, RuntimeError::WorkerPanicked(_)),
                "typed failure, got: {msg}"
            );
            assert!(
                msg.contains("never defines") || msg.contains("undefined"),
                "{msg}"
            );
        }
    }

    #[test]
    fn undefined_remote_read_errors_instead_of_hanging() {
        // PE 1 owns A's second page but has no work at all: it finishes
        // immediately, then PE 0's reads of the never-written page arrive.
        // A finished owner must abort such requests (it is the cell's only
        // possible producer) instead of deferring them forever.
        let mut b = ProgramBuilder::new("undef-read");
        let a = b.output("A", &[32]);
        let x = b.output("B", &[16]);
        b.nest("g0", &[("k", 0, 15)], |nb| {
            nb.assign(a, [iv(0)], sa_ir::Expr::LoopVar(0));
        });
        b.nest("g1", &[("k", 0, 15)], |nb| {
            nb.assign(x, [iv(0)], nb.read(a, [iv(0).plus(16)]));
        });
        let prog = b.finish();
        for n_pes in [1usize, 2] {
            let err =
                execute(&prog, &RuntimeConfig::paper(n_pes, 16)).expect_err("must fail, not hang");
            let msg = err.to_string();
            assert!(matches!(err, RuntimeError::WorkerPanicked(_)), "{msg}");
            assert!(
                msg.contains("never defines") || msg.contains("undefined"),
                "{msg}"
            );
        }
    }

    #[test]
    fn undefined_read_before_a_reinit_barrier_errors_instead_of_hanging() {
        // PE 0 blocks reading A's never-written second page; the program
        // then re-initializes A. The owner reaches the §5 barrier — which
        // can never release, because the blocked reader will never request
        // re-initialization — and must abort the run instead.
        let mut b = ProgramBuilder::new("undef-then-reinit");
        let a = b.output("A", &[32]);
        let x = b.output("B", &[16]);
        b.nest("g0", &[("k", 0, 15)], |nb| {
            nb.assign(a, [iv(0)], sa_ir::Expr::LoopVar(0));
        });
        b.nest("g1", &[("k", 0, 15)], |nb| {
            nb.assign(x, [iv(0)], nb.read(a, [iv(0).plus(16)]));
        });
        b.reinit(a);
        b.nest("g2", &[("k", 0, 15)], |nb| {
            nb.assign(a, [iv(0)], sa_ir::Expr::LoopVar(0) * 2.0);
        });
        let prog = b.finish();
        for n_pes in [1usize, 2] {
            let err =
                execute(&prog, &RuntimeConfig::paper(n_pes, 16)).expect_err("must fail, not hang");
            let msg = err.to_string();
            assert!(matches!(err, RuntimeError::WorkerPanicked(_)), "{msg}");
            assert!(
                msg.contains("never defines") || msg.contains("undefined"),
                "{msg}"
            );
        }
    }

    #[test]
    fn same_nest_index_production_is_a_typed_unsupported_error() {
        // The genuinely dynamic case: the nest both writes P and anchors
        // through it. Rejected before any thread spawns.
        let n = 32;
        let mut b = ProgramBuilder::new("self-ref");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let p = b.output("P", &[n]);
        let x = b.output("X", &[n]);
        b.nest("bad", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(p, [iv(0)], sa_ir::Expr::LoopVar(0));
            nb.assign_indirect(x, p, iv(0), nb.read(y, [iv(0)]));
        });
        let prog = b.finish();
        assert!(unsupported_reason(&prog).is_some());
        assert!(matches!(
            execute(&prog, &RuntimeConfig::paper(2, 16)),
            Err(RuntimeError::Unsupported(_))
        ));
    }

    #[test]
    fn never_defined_index_array_is_a_typed_unsupported_error() {
        let n = 32;
        let mut b = ProgramBuilder::new("undef-idx");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let p = b.output("P", &[n]); // declared, never written
        let x = b.output("X", &[n]);
        b.nest("bad", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign_indirect(x, p, iv(0), nb.read(y, [iv(0)]));
        });
        let prog = b.finish();
        let reason = unsupported_reason(&prog).expect("must be rejected");
        assert!(reason.contains("P"), "reason names the array: {reason}");
        assert!(matches!(
            execute(&prog, &RuntimeConfig::paper(2, 16)),
            Err(RuntimeError::Unsupported(_))
        ));
    }

    #[test]
    fn affine_programs_pass_the_preflight() {
        assert_eq!(unsupported_reason(&map_program(64)), None);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let p = map_program(8);
        assert!(matches!(
            execute(
                &p,
                &RuntimeConfig {
                    n_pes: 0,
                    ..RuntimeConfig::paper(1, 32)
                }
            ),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(matches!(
            execute(
                &p,
                &RuntimeConfig {
                    page_size: 0,
                    ..RuntimeConfig::paper(1, 32)
                }
            ),
            Err(RuntimeError::InvalidConfig(_))
        ));
        // The runtime shares the simulator's validation: a zero-sized
        // block-cyclic chunk is rejected up front, not clamped mid-run.
        assert!(matches!(
            execute(
                &p,
                &RuntimeConfig {
                    partition: PartitionScheme::BlockCyclic { block_pages: 0 },
                    ..RuntimeConfig::paper(2, 32)
                }
            ),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }
}
