//! # sa-runtime — real-thread execution engine
//!
//! Everything the simulator *counts*, this crate actually *does*: one OS
//! thread per PE, crossbeam channels as the interconnect, page
//! request/reply messages for remote reads, I-structure deferral for reads
//! of not-yet-produced cells, partial-result collection at host PEs for
//! reductions, and the §5 host-processor protocol for re-initialization.
//!
//! The engine demonstrates the paper's central claim operationally: with
//! single assignment, **no locks, barriers or programmer-inserted
//! synchronization exist anywhere in the worker loop** — write-before-read
//! is enforced entirely by the memory (an undefined cell queues its reader;
//! the producer's write releases it), and cached pages never need
//! invalidation within a generation.
//!
//! Indirect (gather/scatter) statement anchors run too: before owner
//! screening, workers resolve the gathered subscript — from a local mirror
//! when the index array is statically initialized, or over
//! [`net::Msg::IndirectFetch`] messages (with the same deferral rule) when
//! an earlier nest produced it — via the shared
//! `PartitionMap::resolved_anchor_owner` path, so the *entire* Livermore
//! suite executes on real threads. Only a genuinely dynamic shape (an
//! index array produced in the nest that anchors through it) is rejected,
//! up front and softly, as [`RuntimeError::Unsupported`].
//!
//! Each run additionally records its *realized* read-after-write waits
//! (replies the owner had to defer — [`WaitObs`]) and, in debug builds,
//! asserts every one of them is covered by an edge of `sa-lint`'s static
//! dependence graph: the runtime-side witness that the SA008 deadlock
//! pass reasons over a sound superset of the machine's wait structure.
//!
//! Every run is verified against the sequential reference interpreter in
//! the test suite; access statistics correspond to the counting simulator
//! under its realistic partial-page `Refetch` policy (timing-dependent
//! fetch interleavings can only *add* refetches, never change values), and
//! `tests/runtime_full_suite.rs` certifies count parity across the suite.

#![warn(missing_docs)]

pub mod engine;
pub mod net;
pub mod oracle;
pub mod pagecache;
pub mod worker;

pub use engine::{execute, unsupported_reason, RuntimeConfig, RuntimeError, RuntimeReport};
pub use oracle::ThreadOracle;
pub use worker::WaitObs;
