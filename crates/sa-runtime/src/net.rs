//! Message types of the simulated interconnect (crossbeam channels).

use sa_mem::TagBits;

/// Inter-PE messages. Every variant corresponds to a message the paper's
/// architecture exchanges: page fetches (§4), reduction partials collected
/// at host PEs (§9), and the re-initialization protocol (§5).
#[derive(Debug, Clone)]
pub enum Msg {
    /// Remote read: `from` needs element `offset` of the page.
    PageRequest {
        /// Array identity.
        array: usize,
        /// Page index.
        page: usize,
        /// Requester's generation of the array.
        generation: u32,
        /// Element offset within the page that triggered the fetch
        /// (the owner defers the reply until this cell is defined).
        offset: usize,
        /// Requesting PE.
        from: usize,
    },
    /// The owner ships the page (values + fill snapshot).
    PageReply {
        /// Array identity.
        array: usize,
        /// Page index.
        page: usize,
        /// Generation of the shipped copy.
        generation: u32,
        /// Page contents (undefined cells hold garbage; see `fill`).
        values: Vec<f64>,
        /// Which cells were defined at ship time.
        fill: TagBits,
    },
    /// A reduction partial result travelling to the scalar's host PE.
    Partial {
        /// Scalar slot.
        scalar: usize,
        /// Which reduce-nest occurrence this belongs to.
        seq: u64,
        /// The partial value.
        value: f64,
        /// Contributing PE.
        from: usize,
    },
    /// Host broadcast of a finished reduction.
    ScalarValue {
        /// Scalar slot.
        scalar: usize,
        /// Reduce-nest occurrence.
        seq: u64,
        /// The combined value.
        value: f64,
    },
    /// A PE asks the array's host to re-initialize (§5 collection phase).
    ReinitRequest {
        /// Array identity.
        array: usize,
        /// Requesting PE.
        from: usize,
    },
    /// The host releases the array for reuse (§5 broadcast phase).
    ReinitRelease {
        /// Array identity.
        array: usize,
        /// The array's new generation.
        generation: u32,
    },
    /// Coordinator tells a finished worker to stop serving and exit.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let m = Msg::PageRequest {
            array: 1,
            page: 2,
            generation: 0,
            offset: 3,
            from: 4,
        };
        let c = m.clone();
        assert!(format!("{c:?}").contains("PageRequest"));
        let r = Msg::PageReply {
            array: 1,
            page: 2,
            generation: 0,
            values: vec![1.0],
            fill: TagBits::all_set(1),
        };
        assert!(format!("{r:?}").contains("PageReply"));
    }
}
