//! Message types of the simulated interconnect (crossbeam channels).

use sa_mem::TaggedPage;

/// Inter-PE messages. Every variant corresponds to a message the paper's
/// architecture exchanges: page fetches (§4), reduction partials collected
/// at host PEs (§9), the re-initialization protocol (§5), and the anchor
/// resolution traffic indirect (gather/scatter) statements need before
/// owner screening can run.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Remote read: `from` needs element `offset` of the page.
    PageRequest {
        /// Array identity.
        array: usize,
        /// Page index.
        page: usize,
        /// Requester's generation of the array.
        generation: u32,
        /// Element offset within the page that triggered the fetch
        /// (the owner defers the reply until this cell is defined).
        offset: usize,
        /// Requesting PE.
        from: usize,
    },
    /// The owner ships the page (values + fill snapshot).
    PageReply {
        /// Array identity.
        array: usize,
        /// Page index.
        page: usize,
        /// Generation of the shipped copy.
        generation: u32,
        /// Page contents with the fill snapshot at ship time.
        data: TaggedPage,
        /// True when the owner could not answer immediately and queued the
        /// request until the cell's producer wrote it — an I-structure
        /// deferral, i.e. a *realized* read-after-write wait. The requester
        /// records these so runs can be cross-checked against the static
        /// dependence graph (`sa-lint`'s `DepGraph::covers_wait`).
        deferred: bool,
    },
    /// Anchor resolution: `from` needs element `offset` of an *index
    /// array's* page to compute the owner of an indirect statement anchor
    /// (`A(P(i)) = …`). Same deferral rule as [`Msg::PageRequest`], but the
    /// reply feeds the requester's resolution store, not its counted page
    /// cache — ownership screening is not program work, so these messages
    /// are tallied separately from the §4 fetch traffic.
    IndirectFetch {
        /// Index array identity.
        array: usize,
        /// Page index.
        page: usize,
        /// Requester's generation of the array.
        generation: u32,
        /// Element offset whose definition the owner must wait for.
        offset: usize,
        /// Requesting PE.
        from: usize,
    },
    /// Reply to an [`Msg::IndirectFetch`].
    IndirectReply {
        /// Index array identity.
        array: usize,
        /// Page index.
        page: usize,
        /// Generation of the shipped copy.
        generation: u32,
        /// Page contents with the fill snapshot at ship time.
        data: TaggedPage,
        /// True when the resolution had to wait for the index cell's
        /// single assignment (same deferral semantics as
        /// [`Msg::PageReply::deferred`]).
        deferred: bool,
    },
    /// A reduction partial result travelling to the scalar's host PE.
    Partial {
        /// Scalar slot.
        scalar: usize,
        /// Which reduce-nest occurrence this belongs to.
        seq: u64,
        /// The partial value.
        value: f64,
        /// Contributing PE.
        from: usize,
    },
    /// Host broadcast of a finished reduction.
    ScalarValue {
        /// Scalar slot.
        scalar: usize,
        /// Reduce-nest occurrence.
        seq: u64,
        /// The combined value.
        value: f64,
    },
    /// A PE asks the array's host to re-initialize (§5 collection phase).
    ReinitRequest {
        /// Array identity.
        array: usize,
        /// Requesting PE.
        from: usize,
    },
    /// The host releases the array for reuse (§5 broadcast phase).
    ReinitRelease {
        /// Array identity.
        array: usize,
        /// The array's new generation.
        generation: u32,
    },
    /// A PE confirms it applied a [`Msg::ReinitRelease`] (frames cleared,
    /// generation bumped). Second barrier round: without it, an
    /// already-released PE could race into the next nest and fetch from a
    /// peer that has not yet processed its own release — the owner would
    /// misread that legitimate fetch as a deadlocked pre-barrier reader.
    /// Not part of the paper's §5 message model, so tallied as sync
    /// traffic outside the modeled count.
    ReinitAck {
        /// Array identity.
        array: usize,
        /// Acknowledging PE.
        from: usize,
    },
    /// The host, having collected every [`Msg::ReinitAck`], lets the PEs
    /// leave the barrier: only now is every worker past its release, so
    /// any undefined-cell fetch arriving at a still-syncing worker really
    /// is a dead end. Sync traffic, like [`Msg::ReinitAck`].
    ReinitGo {
        /// Array identity.
        array: usize,
    },
    /// A worker hit an unrecoverable error (e.g. anchor resolution read a
    /// cell the program never defines) and is unwinding: peers must stop
    /// too, so the run tears down as a typed `RuntimeError` instead of
    /// deadlocking on replies that will never come.
    Abort {
        /// The failing PE.
        from: usize,
        /// Its error message, relayed into every peer's panic payload.
        reason: String,
    },
    /// Coordinator tells a finished worker to stop serving and exit.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let m = Msg::PageRequest {
            array: 1,
            page: 2,
            generation: 0,
            offset: 3,
            from: 4,
        };
        let c = m.clone();
        assert!(format!("{c:?}").contains("PageRequest"));
        let r = Msg::PageReply {
            array: 1,
            page: 2,
            generation: 0,
            data: TaggedPage::full(vec![1.0]),
            deferred: false,
        };
        assert!(format!("{r:?}").contains("PageReply"));
        let i = Msg::IndirectFetch {
            array: 1,
            page: 0,
            generation: 0,
            offset: 7,
            from: 2,
        };
        assert!(format!("{i:?}").contains("IndirectFetch"));
        let ir = Msg::IndirectReply {
            array: 1,
            page: 0,
            generation: 0,
            data: TaggedPage::undefined(4),
            deferred: true,
        };
        assert!(format!("{ir:?}").contains("IndirectReply"));
    }
}
