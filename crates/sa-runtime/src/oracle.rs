//! The real-runtime evaluation oracle: `sa-core`'s experiment plans
//! measured by actual worker threads instead of the counting simulator.
//!
//! This is the adapter the ROADMAP's "real-runtime parity" item needs: the
//! same grid an [`sa_core::plan::ExperimentPlan`] enumerates, evaluated by
//! a different backend. Knobs the thread runtime does not model —
//! replacement policies other than the page cache's LRU, the simulator's
//! `Ignore` partial-page fiction — are reported as
//! [`OracleError::Unsupported`] rather than silently approximated. Network
//! topologies *are* modeled: every modeled message a worker really sends is
//! priced through the topology's [`sa_machine::LinkModel`], so hop and
//! link-load figures come back `Some(..)` and certify against the counting
//! simulator's.

use sa_core::oracle::{Oracle, OracleError, RunRecord};
use sa_core::plan::RunConfig;
use sa_ir::Program;
use sa_machine::CachePolicy;

use crate::engine::{execute, RuntimeConfig};

/// Evaluates grid points on real threads via [`execute`].
///
/// The runtime always refetches partially filled pages (it has no
/// omniscient snapshot to fake completeness with), so configs are accepted
/// with either `PartialPagePolicy` but measured under `Refetch` semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadOracle;

impl ThreadOracle {
    /// The runtime parameters for a grid point, or why it can't run.
    fn runtime_config(cfg: &RunConfig) -> Result<RuntimeConfig, OracleError> {
        if cfg.cache_policy != CachePolicy::Lru {
            return Err(OracleError::Unsupported(
                "thread runtime caches are LRU-only".to_string(),
            ));
        }
        Ok(RuntimeConfig::from_machine(&cfg.machine()))
    }
}

impl Oracle for ThreadOracle {
    fn name(&self) -> &'static str {
        "thread-runtime"
    }

    fn measure(&self, program: &Program, cfg: &RunConfig) -> Result<RunRecord, OracleError> {
        let rt = Self::runtime_config(cfg)?;
        let rep = execute(program, &rt).map_err(|e| match e {
            crate::engine::RuntimeError::Unsupported(m) => OracleError::Unsupported(m),
            other => OracleError::Backend(other.to_string()),
        })?;
        Ok(RunRecord {
            cfg: cfg.clone(),
            remote_pct: rep.stats.remote_read_pct(),
            cached_pct: rep.stats.cached_read_pct(),
            writes: rep.stats.writes(),
            local_reads: rep.stats.local_reads(),
            cached_reads: rep.stats.cached_reads(),
            remote_reads: rep.stats.remote_reads(),
            total_reads: rep.stats.total_reads(),
            // The simulator-comparable message count: real wire traffic
            // minus scalar broadcasts and anchor-resolution fetches, the
            // two mechanisms the counting model performs for free.
            messages: rep.modeled_messages(),
            // Real measurements: the workers priced every modeled send
            // through the configured topology's link model.
            hops: Some(rep.hops),
            max_link_load: Some(rep.max_link_load),
            write_balance: sa_machine::load_balance(&rep.stats.writes_per_pe()).jain,
            cycles: None,
            speedup_bound: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::oracle::CountingOracle;
    use sa_core::plan::ExperimentPlan;
    use sa_machine::PartialPagePolicy;

    fn tiny() -> Program {
        use sa_ir::index::iv;
        use sa_ir::{InitPattern, ProgramBuilder};
        let mut b = ProgramBuilder::new("tiny");
        let y = b.input("Y", &[256], InitPattern::Wavy);
        let x = b.output("X", &[255]);
        b.nest("s", &[("k", 0, 254)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(1)]));
        });
        b.finish()
    }

    #[test]
    fn same_plan_different_backend() {
        // The point of the Oracle trait: one grid, two engines.
        let p = tiny();
        let plan = ExperimentPlan::new().pes(&[1, 2, 4]);
        let sim = plan.run(&p, &CountingOracle).unwrap();
        let real = plan.run(&p, &ThreadOracle).unwrap();
        assert_eq!(sim.len(), real.len());
        for (s, r) in sim.records().iter().zip(real.records()) {
            assert_eq!(s.cfg, r.cfg);
            assert_eq!(s.writes, r.writes, "write counts are deterministic");
            assert_eq!(s.total_reads, r.total_reads);
        }
    }

    #[test]
    fn unsupported_knobs_are_typed_errors() {
        let p = tiny();
        let cfg = RunConfig {
            cache_policy: CachePolicy::Fifo,
            ..RunConfig::default()
        };
        assert!(matches!(
            ThreadOracle.measure(&p, &cfg),
            Err(OracleError::Unsupported(_))
        ));
    }

    #[test]
    fn topologies_certify_against_the_simulator() {
        // Hops and max link load are real measurements now, certified equal
        // to the counting simulator's locality accounting (cache disabled so
        // the two engines see identical fetch events).
        let p = tiny();
        for network in [
            sa_machine::NetworkTopology::Ideal,
            sa_machine::NetworkTopology::Bus,
            sa_machine::NetworkTopology::Ring,
            sa_machine::NetworkTopology::Mesh2D,
            sa_machine::NetworkTopology::Torus2D,
            sa_machine::NetworkTopology::Hypercube,
        ] {
            let cfg = RunConfig {
                n_pes: 4,
                cache_elems: 0,
                network,
                ..RunConfig::default()
            };
            let real = ThreadOracle.measure(&p, &cfg).unwrap();
            let sim = CountingOracle.measure(&p, &cfg).unwrap();
            assert_eq!(real.hops, sim.hops, "{network:?} hops");
            assert_eq!(
                real.max_link_load, sim.max_link_load,
                "{network:?} link load"
            );
            assert!(real.hops.is_some());
        }
    }

    #[test]
    fn refetch_semantics_accepted() {
        let p = tiny();
        let cfg = RunConfig {
            n_pes: 2,
            partial_pages: PartialPagePolicy::Refetch,
            ..RunConfig::default()
        };
        let rec = ThreadOracle.measure(&p, &cfg).unwrap();
        assert_eq!(rec.cfg.n_pes, 2);
        assert!(rec.total_reads > 0);
    }
}
