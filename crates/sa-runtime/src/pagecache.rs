//! A value-carrying page cache for worker threads.
//!
//! Unlike the simulator's bookkeeping-only [`sa_machine::PageCache`], this
//! cache stores the fetched page *contents* plus the fill snapshot shipped
//! with the reply, so a worker can satisfy later reads without any message.
//! Partially filled pages are upgraded in place when refetched — the §8
//! behaviour ("a single page might have to be fetched more than once if
//! that page is only partially filled at the time of the first request").

use std::collections::HashMap;

use sa_machine::PageKey;
use sa_mem::TaggedPage;

/// One cached page with its contents.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// Page contents gated by the fill snapshot at (last) fetch time.
    pub data: TaggedPage,
    stamp: u64,
}

/// Fixed-capacity LRU page cache holding values.
#[derive(Debug, Default)]
pub struct ValueCache {
    capacity: usize,
    entries: HashMap<PageKey, CachedPage>,
    tick: u64,
}

impl ValueCache {
    /// A cache of `capacity_pages` pages (0 disables caching).
    pub fn new(capacity_pages: usize) -> Self {
        ValueCache {
            capacity: capacity_pages,
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up element `offset` of `key`; `Some(value)` only if the page is
    /// resident *and* the element was filled at fetch time (LRU-touches).
    pub fn lookup(&mut self, key: PageKey, offset: usize) -> Option<f64> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(&key)?;
        let v = e.data.get(offset)?;
        e.stamp = tick;
        Some(v)
    }

    /// Insert or upgrade a fetched page.
    pub fn insert(&mut self, key: PageKey, data: TaggedPage) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            // Upgrade: copy newly-filled cells, union the snapshot.
            e.data.merge_from(&data);
            e.stamp = self.tick;
            return;
        }
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            key,
            CachedPage {
                data,
                stamp: self.tick,
            },
        );
    }

    /// True if the page is resident, regardless of fill state.
    pub fn has_page(&self, key: &PageKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Drop all pages of `array` (re-initialization release).
    pub fn invalidate_array(&mut self, array: usize) {
        self.entries.retain(|k, _| k.array != array);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_mem::TagBits;

    fn key(page: usize) -> PageKey {
        PageKey {
            array: 0,
            page,
            generation: 0,
        }
    }

    fn full(vals: &[f64]) -> TaggedPage {
        TaggedPage::full(vals.to_vec())
    }

    #[test]
    fn miss_insert_hit_roundtrip() {
        let mut c = ValueCache::new(2);
        assert_eq!(c.lookup(key(0), 1), None);
        c.insert(key(0), full(&[1.0, 2.0]));
        assert_eq!(c.lookup(key(0), 1), Some(2.0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn partial_fill_misses_until_upgrade() {
        let mut c = ValueCache::new(2);
        let mut fill = TagBits::new(4);
        fill.set(0);
        c.insert(
            key(0),
            TaggedPage::from_parts(vec![5.0, 0.0, 0.0, 0.0], fill),
        );
        assert_eq!(c.lookup(key(0), 0), Some(5.0));
        assert_eq!(c.lookup(key(0), 3), None, "unfilled cell must miss");
        let mut more = TagBits::new(4);
        more.set(3);
        c.insert(
            key(0),
            TaggedPage::from_parts(vec![0.0, 0.0, 0.0, 9.0], more),
        );
        assert_eq!(c.lookup(key(0), 3), Some(9.0));
        assert_eq!(c.lookup(key(0), 0), Some(5.0), "old cells survive upgrade");
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = ValueCache::new(2);
        for p in 0..2 {
            c.insert(key(p), full(&[p as f64]));
        }
        c.lookup(key(0), 0); // page 1 becomes LRU
        c.insert(key(2), full(&[9.0]));
        assert_eq!(c.lookup(key(0), 0), Some(0.0));
        assert_eq!(c.lookup(key(1), 0), None);
    }

    #[test]
    fn invalidate_by_array_and_zero_capacity() {
        let mut c = ValueCache::new(4);
        c.insert(key(0), full(&[1.0]));
        c.invalidate_array(0);
        assert!(c.is_empty());
        let mut z = ValueCache::new(0);
        z.insert(key(0), full(&[1.0]));
        assert_eq!(z.lookup(key(0), 0), None);
    }
}
