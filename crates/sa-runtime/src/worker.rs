//! The per-PE worker thread: index screening, message serving, deferral.

use std::collections::HashMap;

use crossbeam::channel::{Receiver, Sender};

use sa_core::screening::PartitionMap;
use sa_ir::interp::{EvalCtx, Memory};
use sa_ir::nest::{LoopNest, Stmt};
use sa_ir::program::Phase;
use sa_ir::{ArrayId, IrError, Program, ReduceOp};
use sa_machine::{host_of, PageKey, PeCounters};
use sa_mem::TagBits;

use crate::net::Msg;
use crate::pagecache::ValueCache;

/// Access/message statistics gathered by one worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// The four access categories, as in the simulator.
    pub counters: PeCounters,
    /// Page fetch requests issued.
    pub page_fetches: u64,
    /// Fetches that re-requested a partially filled cached page.
    pub partial_refetches: u64,
    /// Total messages this worker sent.
    pub messages_sent: u64,
    /// Messages spent in re-initialization rounds.
    pub reinit_messages: u64,
    /// Messages carrying reduction partials or scalar broadcasts.
    pub reduction_messages: u64,
}

/// One locally owned page frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Page contents (tags gate validity).
    pub values: Vec<f64>,
    /// Presence bits.
    pub tags: TagBits,
}

/// Everything a worker returns when it exits.
pub struct WorkerResult {
    /// Statistics.
    pub stats: WorkerStats,
    /// Owned frames: `(array, page) → Frame`.
    pub frames: HashMap<(usize, usize), Frame>,
    /// Final scalar values (identical on every worker).
    pub scalars: Vec<f64>,
}

/// Mutable machine-side state of a worker (split from the evaluation
/// context so expression evaluation can borrow both disjointly).
struct WorkerMem {
    me: usize,
    page_size: usize,
    map: PartitionMap,
    inbox: Receiver<Msg>,
    peers: Vec<Sender<Msg>>,
    frames: HashMap<(usize, usize), Frame>,
    gens: Vec<u32>,
    cache: ValueCache,
    cache_enabled: bool,
    cell_waiters: HashMap<(usize, usize), Vec<(usize, u32)>>, // addr → (pe, gen)
    partials_inbox: HashMap<(usize, u64), Vec<f64>>,
    scalar_ready: HashMap<(usize, u64), f64>,
    reinit_requests: HashMap<usize, usize>,
    reinit_released: HashMap<usize, u32>,
    shutdown: bool,
    stats: WorkerStats,
}

impl WorkerMem {
    fn send(&mut self, to: usize, msg: Msg) {
        self.stats.messages_sent += 1;
        self.peers[to]
            .send(msg)
            .expect("peer inbox closed prematurely");
    }

    /// Reply to a page request from the local frame (must be resident).
    fn reply_page(&mut self, array: usize, page: usize, generation: u32, to: usize) {
        let frame = self.frames.get(&(array, page)).expect("owned frame exists");
        let msg = Msg::PageReply {
            array,
            page,
            generation,
            values: frame.values.clone(),
            fill: frame.tags.clone(),
        };
        self.send(to, msg);
    }

    /// Process one incoming message (anything except the PageReply the
    /// caller may be waiting for).
    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::PageRequest {
                array,
                page,
                generation,
                offset,
                from,
            } => {
                debug_assert_eq!(
                    generation, self.gens[array],
                    "request for a generation the owner has left"
                );
                let frame = self
                    .frames
                    .get(&(array, page))
                    .expect("request for owned page");
                if frame.tags.get(offset) {
                    self.reply_page(array, page, generation, from);
                } else {
                    // Defer: the paper's queued remote read (§4).
                    let addr = page * self.page_size + offset;
                    self.cell_waiters
                        .entry((array, addr))
                        .or_default()
                        .push((from, generation));
                }
            }
            Msg::Partial {
                scalar, seq, value, ..
            } => {
                self.partials_inbox
                    .entry((scalar, seq))
                    .or_default()
                    .push(value);
            }
            Msg::ScalarValue { scalar, seq, value } => {
                self.scalar_ready.insert((scalar, seq), value);
            }
            Msg::ReinitRequest { array, .. } => {
                *self.reinit_requests.entry(array).or_insert(0) += 1;
            }
            Msg::ReinitRelease { array, generation } => {
                self.reinit_released.insert(array, generation);
            }
            Msg::Shutdown => self.shutdown = true,
            Msg::PageReply { .. } => {
                unreachable!("unsolicited page reply (one outstanding request at a time)")
            }
        }
    }

    /// Block until a condition over self becomes true, serving messages.
    fn serve_until(&mut self, mut done: impl FnMut(&Self) -> bool) {
        while !done(self) {
            let msg = self.inbox.recv().expect("inbox closed while waiting");
            self.handle(msg);
        }
    }

    /// Producer write into an owned frame; releases queued remote readers.
    fn local_write(&mut self, array: usize, addr: usize, value: f64) {
        let page = addr / self.page_size;
        let offset = addr - page * self.page_size;
        let frame = self
            .frames
            .get_mut(&(array, page))
            .expect("write to owned page");
        assert!(
            !frame.tags.get(offset),
            "single-assignment violation in worker {}: array {} addr {}",
            self.me,
            array,
            addr
        );
        frame.values[offset] = value;
        frame.tags.set(offset);
        self.stats.counters.writes += 1;
        if let Some(waiters) = self.cell_waiters.remove(&(array, addr)) {
            for (pe, generation) in waiters {
                self.reply_page(array, page, generation, pe);
            }
        }
    }

    /// Fetch a remote page (blocking), returning the needed element.
    fn remote_fetch(&mut self, array: usize, addr: usize, owner: usize) -> f64 {
        let page = addr / self.page_size;
        let offset = addr - page * self.page_size;
        let generation = self.gens[array];
        let key = PageKey {
            array,
            page,
            generation,
        };
        self.stats.counters.remote_reads += 1;
        self.stats.page_fetches += 1;
        self.send(
            owner,
            Msg::PageRequest {
                array,
                page,
                generation,
                offset,
                from: self.me,
            },
        );
        loop {
            let msg = self.inbox.recv().expect("inbox closed during fetch");
            match msg {
                Msg::PageReply {
                    array: a,
                    page: p,
                    generation: g,
                    values,
                    fill,
                } => {
                    debug_assert_eq!((a, p, g), (array, page, generation));
                    let v = values[offset];
                    debug_assert!(
                        fill.get(offset),
                        "owner replied before the cell was defined"
                    );
                    if self.cache_enabled {
                        self.cache.insert(key, values, fill);
                    }
                    return v;
                }
                other => self.handle(other),
            }
        }
    }
}

impl Memory for WorkerMem {
    fn load(&mut self, array: ArrayId, addr: usize) -> Result<f64, IrError> {
        let a = array.0;
        let owner = self.map.owner(array, addr);
        if owner == self.me {
            let page = addr / self.page_size;
            let offset = addr - page * self.page_size;
            let frame = self.frames.get(&(a, page)).expect("owned frame exists");
            if !frame.tags.get(offset) {
                return Err(IrError::ReadUndefined {
                    array: format!("array#{a}"),
                    addr,
                });
            }
            self.stats.counters.local_reads += 1;
            return Ok(frame.values[offset]);
        }
        let page = addr / self.page_size;
        let offset = addr - page * self.page_size;
        let key = PageKey {
            array: a,
            page,
            generation: self.gens[a],
        };
        if self.cache_enabled {
            if let Some(v) = self.cache.lookup(key, offset) {
                self.stats.counters.cached_reads += 1;
                return Ok(v);
            }
            if self.cache.has_page(&key) {
                // Resident but the cell was unfilled at fetch time: the §8
                // partial-page refetch.
                self.stats.partial_refetches += 1;
            }
        }
        Ok(self.remote_fetch(a, addr, owner))
    }
}

/// The worker proper: evaluation context + machine state.
pub struct Worker<'p> {
    program: &'p Program,
    ctx: EvalCtx<'p>,
    mem: WorkerMem,
    rr: usize,
    n_pes: usize,
}

/// Spawn-side constructor arguments.
pub struct WorkerSpec {
    /// This worker's PE index.
    pub me: usize,
    /// Total PEs.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Cache capacity in pages (0 disables).
    pub cache_pages: usize,
    /// Receiving end of this PE's inbox.
    pub inbox: Receiver<Msg>,
    /// Senders to every PE's inbox (index = PE).
    pub peers: Vec<Sender<Msg>>,
}

impl<'p> Worker<'p> {
    /// Build a worker with its owned frames initialized.
    pub fn new(program: &'p Program, map: PartitionMap, spec: WorkerSpec) -> Self {
        let mut frames = HashMap::new();
        for (a, decl) in program.arrays.iter().enumerate() {
            let len = decl.len();
            let init = decl.init.materialize(len);
            let pages = sa_machine::pages_in(len, spec.page_size);
            for page in 0..pages {
                if map.owner(ArrayId(a), page * spec.page_size) != spec.me {
                    continue;
                }
                let start = page * spec.page_size;
                let elems = (len - start).min(spec.page_size);
                let mut frame = Frame {
                    values: vec![0.0; elems],
                    tags: TagBits::new(elems),
                };
                for off in 0..elems {
                    if start + off < init.len() {
                        frame.values[off] = init[start + off];
                        frame.tags.set(off);
                    }
                }
                frames.insert((a, page), frame);
            }
        }
        let gens = vec![0u32; program.arrays.len()];
        Worker {
            program,
            ctx: EvalCtx::new(program),
            n_pes: spec.n_pes,
            rr: 0,
            mem: WorkerMem {
                me: spec.me,
                page_size: spec.page_size,
                map,
                inbox: spec.inbox,
                peers: spec.peers,
                frames,
                gens,
                cache: ValueCache::new(spec.cache_pages),
                cache_enabled: spec.cache_pages > 0,
                cell_waiters: HashMap::new(),
                partials_inbox: HashMap::new(),
                scalar_ready: HashMap::new(),
                reinit_requests: HashMap::new(),
                reinit_released: HashMap::new(),
                shutdown: false,
                stats: WorkerStats::default(),
            },
        }
    }

    /// Owner of a statement instance (affine anchors only; anchorless
    /// statements are dealt round-robin with a counter every worker
    /// advances identically).
    fn owner_of(&mut self, stmt: &Stmt, ivs: &[i64]) -> usize {
        match self.mem.map.anchor_owner(self.program, stmt, ivs) {
            Some(pe) => pe,
            None => {
                assert!(
                    sa_ir::analysis::anchor_ref(stmt)
                        .map(|r| !r.has_indirection())
                        .unwrap_or(true),
                    "the thread runtime requires affine statement anchors"
                );
                let pe = self.rr % self.n_pes;
                self.rr += 1;
                pe
            }
        }
    }

    fn run_nest(&mut self, seq: u64, nest: &LoopNest) {
        // Pre-pass: reduction metadata (ops + participant sets), computed
        // identically on every worker from the static screening.
        let reduce_meta: Vec<(usize, ReduceOp)> = nest
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Reduce { target, op, .. } => Some((target.0, *op)),
                _ => None,
            })
            .collect();
        let mut participants: HashMap<usize, Vec<bool>> = HashMap::new();
        if !reduce_meta.is_empty() {
            for &(sid, _) in &reduce_meta {
                participants.insert(sid, vec![false; self.n_pes]);
            }
            let rr_snapshot = self.rr;
            let mut rr = rr_snapshot;
            nest.for_each_iteration(|ivs| {
                for stmt in &nest.body {
                    let owner = match self.mem.map.anchor_owner(self.program, stmt, ivs) {
                        Some(pe) => pe,
                        None => {
                            let pe = rr % self.n_pes;
                            rr += 1;
                            pe
                        }
                    };
                    if let Stmt::Reduce { target, .. } = stmt {
                        participants.get_mut(&target.0).expect("seeded")[owner] = true;
                    }
                }
            });
        }

        // Local partial accumulators.
        let mut partial: HashMap<usize, f64> = reduce_meta
            .iter()
            .map(|&(sid, op)| (sid, op.identity()))
            .collect();
        let mut participated: HashMap<usize, bool> =
            reduce_meta.iter().map(|&(sid, _)| (sid, false)).collect();

        let me = self.mem.me;
        nest.for_each_iteration_ctl(&mut |ivs: &[i64]| {
            for stmt in &nest.body {
                let owner = self.owner_of(stmt, ivs);
                if owner != me {
                    continue;
                }
                match stmt {
                    Stmt::Assign { target, value } => {
                        let v = self
                            .ctx
                            .eval(value, ivs, &mut self.mem)
                            .unwrap_or_else(|e| panic!("worker {me}: {e}"));
                        let addr = self
                            .ctx
                            .resolve_addr(target, ivs, &mut self.mem)
                            .unwrap_or_else(|e| panic!("worker {me}: {e}"));
                        self.mem.local_write(target.array.0, addr, v);
                    }
                    Stmt::Reduce { target, op, value } => {
                        let v = self
                            .ctx
                            .eval(value, ivs, &mut self.mem)
                            .unwrap_or_else(|e| panic!("worker {me}: {e}"));
                        let acc = partial.get_mut(&target.0).expect("seeded");
                        *acc = op.combine(*acc, v);
                        participated.insert(target.0, true);
                    }
                }
            }
        });

        // Vector→scalar collection at the host PE (§9), then broadcast.
        for &(sid, op) in &reduce_meta {
            let host = host_of(sid, self.n_pes);
            let parts = &participants[&sid];
            let remote_contributors = parts
                .iter()
                .enumerate()
                .filter(|&(pe, &p)| p && pe != host)
                .count();
            if me == host {
                let mut acc = if parts[me] {
                    partial[&sid]
                } else {
                    op.identity()
                };
                self.mem.serve_until(|m| {
                    m.partials_inbox.get(&(sid, seq)).map(Vec::len).unwrap_or(0)
                        >= remote_contributors
                });
                for v in self
                    .mem
                    .partials_inbox
                    .remove(&(sid, seq))
                    .unwrap_or_default()
                {
                    acc = op.combine(acc, v);
                }
                for pe in 0..self.n_pes {
                    if pe != host {
                        self.mem.send(
                            pe,
                            Msg::ScalarValue {
                                scalar: sid,
                                seq,
                                value: acc,
                            },
                        );
                        self.mem.stats.reduction_messages += 1;
                    }
                }
                self.ctx.scalars[sid] = acc;
            } else {
                if parts[me] {
                    let value = partial[&sid];
                    self.mem.send(
                        host,
                        Msg::Partial {
                            scalar: sid,
                            seq,
                            value,
                            from: me,
                        },
                    );
                    self.mem.stats.reduction_messages += 1;
                }
                self.mem
                    .serve_until(|m| m.scalar_ready.contains_key(&(sid, seq)));
                let v = self.mem.scalar_ready[&(sid, seq)];
                self.ctx.scalars[sid] = v;
            }
        }
    }

    fn run_reinit(&mut self, a: usize) {
        let me = self.mem.me;
        let host = host_of(a, self.n_pes);
        if me == host {
            *self.mem.reinit_requests.entry(a).or_insert(0) += 1; // own request
            let n = self.n_pes;
            self.mem
                .serve_until(|m| m.reinit_requests.get(&a).copied().unwrap_or(0) >= n);
            self.mem.reinit_requests.remove(&a);
            let new_gen = self.mem.gens[a] + 1;
            for pe in 0..self.n_pes {
                if pe != host {
                    self.mem.send(
                        pe,
                        Msg::ReinitRelease {
                            array: a,
                            generation: new_gen,
                        },
                    );
                    self.mem.stats.reinit_messages += 1;
                }
            }
            self.apply_release(a, new_gen);
        } else {
            self.mem
                .send(host, Msg::ReinitRequest { array: a, from: me });
            self.mem.stats.reinit_messages += 1;
            self.mem.serve_until(|m| m.reinit_released.contains_key(&a));
            let new_gen = self.mem.reinit_released.remove(&a).expect("just observed");
            self.apply_release(a, new_gen);
        }
    }

    fn apply_release(&mut self, a: usize, new_gen: u32) {
        assert!(
            !self.mem.cell_waiters.keys().any(|&(arr, _)| arr == a),
            "re-initialization of array {a} with deferred readers pending"
        );
        self.mem.gens[a] = new_gen;
        for ((arr, _), frame) in self.mem.frames.iter_mut() {
            if *arr == a {
                frame.tags.clear();
            }
        }
        self.mem.cache.invalidate_array(a);
    }

    /// Execute the whole program, then serve peers until shutdown.
    pub fn run(mut self, done: &Sender<usize>) -> WorkerResult {
        for (pi, phase) in self.program.phases.iter().enumerate() {
            match phase {
                Phase::Loop(nest) => self.run_nest(pi as u64, nest),
                Phase::Reinit(id) => self.run_reinit(id.0),
            }
        }
        done.send(self.mem.me).expect("coordinator gone");
        self.mem.serve_until(|m| m.shutdown);
        WorkerResult {
            stats: self.mem.stats,
            frames: self.mem.frames,
            scalars: self.ctx.scalars,
        }
    }
}

/// Extension trait so the execute loop above can use a `&mut FnMut` without
/// fighting the borrow checker around `self`.
trait ForEachCtl {
    fn for_each_iteration_ctl(&self, f: &mut dyn FnMut(&[i64]));
}

impl ForEachCtl for LoopNest {
    fn for_each_iteration_ctl(&self, f: &mut dyn FnMut(&[i64])) {
        self.for_each_iteration(|ivs| f(ivs));
    }
}
