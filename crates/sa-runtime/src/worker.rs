//! The per-PE worker thread: index screening, message serving, deferral.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use sa_core::screening::PartitionMap;
use sa_ir::interp::{EvalCtx, Memory};
use sa_ir::nest::{LoopNest, Stmt};
use sa_ir::program::{ArrayInit, Phase};
use sa_ir::{analysis, ArrayId, IrError, Program, ReduceOp};
use sa_machine::{host_of, Network, NetworkTopology, PageKey, PeCounters};
use sa_mem::TaggedPage;

use crate::net::Msg;
use crate::pagecache::ValueCache;

/// Access/message statistics gathered by one worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// The four access categories, as in the simulator.
    pub counters: PeCounters,
    /// Page fetch requests issued.
    pub page_fetches: u64,
    /// Fetches that re-requested a partially filled cached page.
    pub partial_refetches: u64,
    /// Total messages this worker sent.
    pub messages_sent: u64,
    /// Messages spent in re-initialization rounds.
    pub reinit_messages: u64,
    /// Messages carrying reduction partials to their host PE (the traffic
    /// the simulator's §9 model charges).
    pub reduction_messages: u64,
    /// Scalar-result broadcast messages (the runtime implements the
    /// simulator's "implicit availability broadcast" with real messages;
    /// kept separate so the two message models stay comparable).
    pub broadcast_messages: u64,
    /// Anchor-resolution messages ([`Msg::IndirectFetch`] requests and
    /// their replies). The simulator resolves indirect anchors with an
    /// uncounted peek, so these too are tallied outside the §4 fetch model.
    pub resolve_messages: u64,
    /// Barrier-hardening messages ([`Msg::ReinitAck`]/[`Msg::ReinitGo`]):
    /// the second re-initialization round that keeps released PEs from
    /// racing ahead of still-syncing peers. The paper's §5 model charges
    /// only the request/release rounds, so these stay outside the modeled
    /// count.
    pub sync_messages: u64,
}

/// One locally owned page frame: contents plus presence bits.
pub type Frame = TaggedPage;

/// One *realized* read-after-write wait: this PE's read (at the statement
/// site it was executing or screening) could not be answered immediately —
/// the owner queued it until the cell's producer wrote the value. These
/// are exactly the waits `sa-lint`'s static dependence graph must cover
/// (`DepGraph::covers_wait`), and the runtime asserts that in debug builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaitObs {
    /// Phase index of the statement whose evaluation blocked.
    pub phase: usize,
    /// Statement index within the phase's nest body.
    pub stmt: usize,
    /// Array whose cell the read waited on.
    pub array: usize,
    /// Flat element address of the waited-on cell.
    pub addr: usize,
    /// The array's generation at wait time.
    pub generation: u32,
}

/// Everything a worker returns when it exits.
pub struct WorkerResult {
    /// Statistics.
    pub stats: WorkerStats,
    /// This worker's share of the modeled-traffic network accounting
    /// (remote fetches it issued, partials and §5 rounds it sent), priced
    /// by the configured topology. The engine merges all shares into the
    /// run's hop and link-load totals.
    pub net: Network,
    /// Owned frames: `(array, page) → Frame`.
    pub frames: HashMap<(usize, usize), Frame>,
    /// Final scalar values (identical on every worker).
    pub scalars: Vec<f64>,
    /// Every deferred reply this worker received, i.e. its realized
    /// read-after-write waits, in arrival order.
    pub wait_edges: Vec<WaitObs>,
}

/// A queued remote reader of a not-yet-defined cell (paper §4).
#[derive(Debug, Clone, Copy)]
struct Waiter {
    pe: usize,
    generation: u32,
    /// Whether the reader asked via [`Msg::IndirectFetch`] (anchor
    /// resolution) rather than a counted page request.
    indirect: bool,
}

/// Mutable machine-side state of a worker (split from the evaluation
/// context so expression evaluation can borrow both disjointly).
struct WorkerMem {
    me: usize,
    page_size: usize,
    map: PartitionMap,
    inbox: Receiver<Msg>,
    peers: Vec<Sender<Msg>>,
    frames: HashMap<(usize, usize), Frame>,
    gens: Vec<u32>,
    cache: ValueCache,
    cache_enabled: bool,
    cell_waiters: HashMap<(usize, usize), Vec<Waiter>>, // addr → waiters
    partials_inbox: HashMap<(usize, u64), Vec<f64>>,
    scalar_ready: HashMap<(usize, u64), f64>,
    reinit_requests: HashMap<usize, usize>,
    reinit_released: HashMap<usize, u32>,
    reinit_acks: HashMap<usize, usize>,
    reinit_go: HashSet<usize>,
    /// Generation-0 full images of statically initialized index arrays
    /// (shared read-only across all workers of a run): anchor resolution
    /// against them is message-free, mirroring the simulator's uncounted
    /// peek.
    mirrors: Arc<HashMap<usize, Vec<f64>>>,
    /// Resolution snapshots fetched via [`Msg::IndirectFetch`], keyed like
    /// the page cache but unbounded and uncounted: ownership screening
    /// must not perturb the measured access statistics.
    resolutions: HashMap<PageKey, TaggedPage>,
    /// True once this worker has executed every phase of the program and
    /// only serves peers: a fetch of a still-undefined owned cell can then
    /// never be satisfied (this worker was its only producer) and aborts
    /// the run instead of deadlocking it.
    finished: bool,
    /// Array names, indexed by array id — only for diagnostics, so abort
    /// messages name the array the way `sapp lint` spans do.
    names: Vec<String>,
    /// True while this worker sits inside the §5 re-initialization
    /// barrier, *before* its release is applied (the host stays syncing
    /// until it has broadcast [`Msg::ReinitGo`]). A release is only
    /// possible once every PE has reached the barrier, so while syncing a
    /// fetch of an undefined owned cell belongs to a peer that is blocked
    /// *before* the barrier and will never arrive — same dead end as
    /// [`WorkerMem::finished`]. After the release, deferral is safe again
    /// and the go round keeps this worker serving until every peer is
    /// past its own release.
    syncing: bool,
    shutdown: bool,
    stats: WorkerStats,
    /// Topology-priced accounting of this worker's modeled sends — only
    /// the traffic the counting simulator's message model charges (page
    /// fetches, reduction partials, §5 request/release), never broadcasts,
    /// anchor resolution, or barrier-hardening rounds.
    net: Network,
    /// Statement site currently being executed or screened — the reader
    /// coordinates stamped onto [`WaitObs`] records when a fetch issued
    /// from here comes back deferred.
    cur_phase: usize,
    cur_stmt: usize,
    /// Realized read-after-write waits observed by this worker.
    wait_edges: Vec<WaitObs>,
}

impl WorkerMem {
    fn send(&mut self, to: usize, msg: Msg) {
        self.stats.messages_sent += 1;
        if self.peers[to].send(msg).is_err() {
            // The peer's inbox is gone, so it is unwinding — and its
            // `fail` broadcast (sent *before* it dropped the inbox) must
            // already be queued here. Relay that root cause instead of
            // masking it with a generic send failure.
            while let Ok(m) = self.inbox.try_recv() {
                if let Msg::Abort { from, reason } = m {
                    panic!("worker {}: aborted by worker {from}: {reason}", self.me);
                }
            }
            panic!("worker {}: peer {to} exited prematurely", self.me);
        }
    }

    /// Unrecoverable failure: broadcast [`Msg::Abort`] so every peer —
    /// including ones blocked waiting for a reply this worker will never
    /// send — unwinds too, then panic with the reason. The engine joins
    /// the panicked threads and surfaces the message as a typed
    /// `RuntimeError::WorkerPanicked`; without the broadcast, a lone
    /// panicking worker would deadlock the whole run.
    fn fail(&self, reason: String) -> ! {
        for (pe, tx) in self.peers.iter().enumerate() {
            if pe != self.me {
                let _ = tx.send(Msg::Abort {
                    from: self.me,
                    reason: reason.clone(),
                });
            }
        }
        panic!("worker {}: {reason}", self.me);
    }

    /// Human-readable array reference for abort messages: `` `X` (array#2) ``.
    fn array_label(&self, array: usize) -> String {
        match self.names.get(array) {
            Some(n) => format!("`{n}` (array#{array})"),
            None => format!("array#{array}"),
        }
    }

    /// Reply to a page request from the local frame (must be resident).
    /// `indirect` routes the copy to the requester's resolution store;
    /// `deferred` tells the requester its read was queued behind the
    /// producer's write (a realized RAW wait) rather than served at once.
    fn reply_page(
        &mut self,
        array: usize,
        page: usize,
        generation: u32,
        to: usize,
        indirect: bool,
        deferred: bool,
    ) {
        let data = self
            .frames
            .get(&(array, page))
            .expect("owned frame exists")
            .clone();
        let msg = if indirect {
            self.stats.resolve_messages += 1;
            Msg::IndirectReply {
                array,
                page,
                generation,
                data,
                deferred,
            }
        } else {
            Msg::PageReply {
                array,
                page,
                generation,
                data,
                deferred,
            }
        };
        self.send(to, msg);
    }

    /// Serve one fetch-style request: reply if the cell is defined, defer
    /// otherwise (the paper's queued remote read, §4).
    fn serve_fetch(
        &mut self,
        array: usize,
        page: usize,
        generation: u32,
        offset: usize,
        from: usize,
        indirect: bool,
    ) {
        debug_assert_eq!(
            generation, self.gens[array],
            "request for a generation the owner has left"
        );
        let frame = self
            .frames
            .get(&(array, page))
            .expect("request for owned page");
        if frame.get(offset).is_some() {
            self.reply_page(array, page, generation, from, indirect, false);
        } else {
            let addr = page * self.page_size + offset;
            if self.finished || self.syncing {
                // This worker is the cell's only producer under
                // owner-computes, and it will never write again before the
                // requester unblocks: it has either run out of program, or
                // it sits inside the two-round re-initialization barrier —
                // which no PE has left yet (leaving requires every PE's
                // ack), so the requester is blocked *before* the barrier
                // and can never reach it. Tear the run down instead of
                // deferring forever.
                let label = self.array_label(array);
                self.fail(format!(
                    "PE {from} read {label}[{addr}], which this program never \
                     defines — a dangling I-structure deferral (sapp lint: SA004)"
                ));
            }
            self.cell_waiters
                .entry((array, addr))
                .or_default()
                .push(Waiter {
                    pe: from,
                    generation,
                    indirect,
                });
        }
    }

    /// Process one incoming message (anything except the reply the caller
    /// may be waiting for).
    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::PageRequest {
                array,
                page,
                generation,
                offset,
                from,
            } => self.serve_fetch(array, page, generation, offset, from, false),
            Msg::IndirectFetch {
                array,
                page,
                generation,
                offset,
                from,
            } => self.serve_fetch(array, page, generation, offset, from, true),
            Msg::Partial {
                scalar, seq, value, ..
            } => {
                self.partials_inbox
                    .entry((scalar, seq))
                    .or_default()
                    .push(value);
            }
            Msg::ScalarValue { scalar, seq, value } => {
                self.scalar_ready.insert((scalar, seq), value);
            }
            Msg::ReinitRequest { array, .. } => {
                *self.reinit_requests.entry(array).or_insert(0) += 1;
            }
            Msg::ReinitRelease { array, generation } => {
                self.reinit_released.insert(array, generation);
            }
            Msg::ReinitAck { array, .. } => {
                *self.reinit_acks.entry(array).or_insert(0) += 1;
            }
            Msg::ReinitGo { array } => {
                self.reinit_go.insert(array);
            }
            Msg::Shutdown => self.shutdown = true,
            Msg::Abort { from, reason } => {
                // A peer is unwinding; no reply this worker might be
                // blocked on will ever arrive. Unwind too (without
                // re-broadcasting — the originator already told everyone).
                panic!("worker {}: aborted by worker {from}: {reason}", self.me);
            }
            Msg::PageReply { .. } | Msg::IndirectReply { .. } => {
                unreachable!("unsolicited reply (one outstanding request at a time)")
            }
        }
    }

    /// Block until a condition over self becomes true, serving messages.
    fn serve_until(&mut self, mut done: impl FnMut(&Self) -> bool) {
        while !done(self) {
            let msg = self.inbox.recv().expect("inbox closed while waiting");
            self.handle(msg);
        }
    }

    /// Producer write into an owned frame; releases queued remote readers.
    fn local_write(&mut self, array: usize, addr: usize, value: f64) {
        let page = addr / self.page_size;
        let offset = addr - page * self.page_size;
        let frame = self
            .frames
            .get_mut(&(array, page))
            .expect("write to owned page");
        if frame.set(offset, value) {
            self.fail(format!(
                "single-assignment violation: array {array} addr {addr} written twice"
            ));
        }
        self.stats.counters.writes += 1;
        if let Some(waiters) = self.cell_waiters.remove(&(array, addr)) {
            for w in waiters {
                self.reply_page(array, page, w.generation, w.pe, w.indirect, true);
            }
        }
    }

    /// Fetch a remote page (blocking), returning the needed element.
    fn remote_fetch(&mut self, array: usize, addr: usize, owner: usize) -> f64 {
        let page = addr / self.page_size;
        let offset = addr - page * self.page_size;
        let generation = self.gens[array];
        let key = PageKey {
            array,
            page,
            generation,
        };
        self.stats.counters.remote_reads += 1;
        self.stats.page_fetches += 1;
        // Price the fetch (request + reply) exactly like the counting
        // simulator's `record_fetch` at its remote-read site.
        self.net.record_fetch(self.me, owner);
        self.send(
            owner,
            Msg::PageRequest {
                array,
                page,
                generation,
                offset,
                from: self.me,
            },
        );
        loop {
            let msg = self.inbox.recv().expect("inbox closed during fetch");
            match msg {
                Msg::PageReply {
                    array: a,
                    page: p,
                    generation: g,
                    data,
                    deferred,
                } => {
                    debug_assert_eq!((a, p, g), (array, page, generation));
                    let v = data
                        .get(offset)
                        .expect("owner replied before the cell was defined");
                    if deferred {
                        self.wait_edges.push(WaitObs {
                            phase: self.cur_phase,
                            stmt: self.cur_stmt,
                            array,
                            addr,
                            generation,
                        });
                    }
                    if self.cache_enabled {
                        self.cache.insert(key, data);
                    }
                    return v;
                }
                other => self.handle(other),
            }
        }
    }

    /// Non-counting read of an index array cell for anchor resolution.
    ///
    /// Resolution order: the local frame (the cell may be ours), the
    /// generation-0 static mirror, the resolution store, and finally an
    /// [`Msg::IndirectFetch`] round trip to the owner (who defers the reply
    /// until the cell's single assignment completes — the SSA sequencing
    /// that makes indirect anchors resolvable at all).
    fn resolve_load(&mut self, array: usize, addr: usize) -> Result<f64, IrError> {
        let page = addr / self.page_size;
        let offset = addr - page * self.page_size;
        if self.map.owner(ArrayId(array), addr) == self.me {
            return self
                .frames
                .get(&(array, page))
                .and_then(|f| f.get(offset))
                .ok_or(IrError::ReadUndefined {
                    array: format!("array#{array}"),
                    addr,
                });
        }
        if self.gens[array] == 0 {
            if let Some(mirror) = self.mirrors.get(&array) {
                return Ok(mirror[addr]);
            }
        }
        let key = PageKey {
            array,
            page,
            generation: self.gens[array],
        };
        if let Some(v) = self.resolutions.get(&key).and_then(|p| p.get(offset)) {
            return Ok(v);
        }
        Ok(self.resolve_fetch(key, offset))
    }

    /// Blocking [`Msg::IndirectFetch`] round trip for one resolution cell.
    fn resolve_fetch(&mut self, key: PageKey, offset: usize) -> f64 {
        self.stats.resolve_messages += 1;
        let owner = self
            .map
            .owner(ArrayId(key.array), key.page * self.page_size);
        self.send(
            owner,
            Msg::IndirectFetch {
                array: key.array,
                page: key.page,
                generation: key.generation,
                offset,
                from: self.me,
            },
        );
        loop {
            let msg = self.inbox.recv().expect("inbox closed during resolution");
            match msg {
                Msg::IndirectReply {
                    array,
                    page,
                    generation,
                    data,
                    deferred,
                } => {
                    debug_assert_eq!(
                        (array, page, generation),
                        (key.array, key.page, key.generation)
                    );
                    let v = data
                        .get(offset)
                        .expect("owner resolved before the cell was defined");
                    if deferred {
                        self.wait_edges.push(WaitObs {
                            phase: self.cur_phase,
                            stmt: self.cur_stmt,
                            array,
                            addr: page * self.page_size + offset,
                            generation,
                        });
                    }
                    self.resolutions
                        .entry(key)
                        .and_modify(|p| p.merge_from(&data))
                        .or_insert(data);
                    return v;
                }
                other => self.handle(other),
            }
        }
    }
}

impl Memory for WorkerMem {
    fn load(&mut self, array: ArrayId, addr: usize) -> Result<f64, IrError> {
        let a = array.0;
        let owner = self.map.owner(array, addr);
        let page = addr / self.page_size;
        let offset = addr - page * self.page_size;
        if owner == self.me {
            let frame = self.frames.get(&(a, page)).expect("owned frame exists");
            let v = frame.get(offset).ok_or(IrError::ReadUndefined {
                array: format!("array#{a}"),
                addr,
            })?;
            self.stats.counters.local_reads += 1;
            return Ok(v);
        }
        let key = PageKey {
            array: a,
            page,
            generation: self.gens[a],
        };
        if self.cache_enabled {
            if let Some(v) = self.cache.lookup(key, offset) {
                self.stats.counters.cached_reads += 1;
                return Ok(v);
            }
            if self.cache.has_page(&key) {
                // Resident but the cell was unfilled at fetch time: the §8
                // partial-page refetch.
                self.stats.partial_refetches += 1;
            }
        }
        Ok(self.remote_fetch(a, addr, owner))
    }
}

/// Adapter presenting [`WorkerMem`]'s non-counting resolution reads as a
/// [`Memory`], for [`PartitionMap::resolved_anchor_owner`].
struct Resolve<'a>(&'a mut WorkerMem);

impl Memory for Resolve<'_> {
    fn load(&mut self, array: ArrayId, addr: usize) -> Result<f64, IrError> {
        self.0.resolve_load(array.0, addr)
    }
}

/// The worker proper: evaluation context + machine state.
pub struct Worker<'p> {
    program: &'p Program,
    ctx: EvalCtx<'p>,
    mem: WorkerMem,
    /// Ownership map (same data as `mem.map`; a separate copy so statement
    /// screening can resolve through `mem` without aliasing it).
    map: PartitionMap,
    rr: usize,
    n_pes: usize,
}

/// Spawn-side constructor arguments.
pub struct WorkerSpec {
    /// This worker's PE index.
    pub me: usize,
    /// Total PEs.
    pub n_pes: usize,
    /// Page size in elements.
    pub page_size: usize,
    /// Cache capacity in pages (0 disables).
    pub cache_pages: usize,
    /// Interconnect topology pricing the modeled traffic.
    pub network: NetworkTopology,
    /// Receiving end of this PE's inbox.
    pub inbox: Receiver<Msg>,
    /// Senders to every PE's inbox (index = PE).
    pub peers: Vec<Sender<Msg>>,
    /// Static anchor-resolution mirrors, built once per run with
    /// [`static_mirrors`] and shared read-only by every worker.
    pub mirrors: Arc<HashMap<usize, Vec<f64>>>,
}

/// Full images of the statically initialized index arrays that feed
/// indirect statement anchors, keyed by array index. Materialized **once
/// per run** and shared across workers via `Arc`: anchor screening against
/// them needs no traffic at all (the simulator's uncounted peek,
/// replicated), and sharing avoids `n_pes` identical copies of each image.
pub fn static_mirrors(program: &Program) -> Arc<HashMap<usize, Vec<f64>>> {
    let mut mirrors = HashMap::new();
    for nest in program.nests() {
        for stmt in &nest.body {
            for base in analysis::anchor_index_arrays(stmt) {
                let decl = program.array(base);
                if let ArrayInit::Full(_) = decl.init {
                    mirrors
                        .entry(base.0)
                        .or_insert_with(|| decl.init.materialize(decl.len()));
                }
            }
        }
    }
    Arc::new(mirrors)
}

impl<'p> Worker<'p> {
    /// Build a worker with its owned frames initialized.
    pub fn new(program: &'p Program, map: PartitionMap, spec: WorkerSpec) -> Self {
        let mut frames = HashMap::new();
        for (a, decl) in program.arrays.iter().enumerate() {
            let len = decl.len();
            let init = decl.init.materialize(len);
            let pages = sa_machine::pages_in(len, spec.page_size);
            for page in 0..pages {
                if map.owner(ArrayId(a), page * spec.page_size) != spec.me {
                    continue;
                }
                let start = page * spec.page_size;
                let elems = (len - start).min(spec.page_size);
                let mut frame = Frame::undefined(elems);
                for off in 0..elems {
                    if start + off < init.len() {
                        frame.set(off, init[start + off]);
                    }
                }
                frames.insert((a, page), frame);
            }
        }
        let gens = vec![0u32; program.arrays.len()];
        Worker {
            program,
            ctx: EvalCtx::new(program),
            n_pes: spec.n_pes,
            rr: 0,
            map: map.clone(),
            mem: WorkerMem {
                me: spec.me,
                page_size: spec.page_size,
                map,
                inbox: spec.inbox,
                peers: spec.peers,
                frames,
                gens,
                cache: ValueCache::new(spec.cache_pages),
                cache_enabled: spec.cache_pages > 0,
                cell_waiters: HashMap::new(),
                partials_inbox: HashMap::new(),
                scalar_ready: HashMap::new(),
                reinit_requests: HashMap::new(),
                reinit_released: HashMap::new(),
                reinit_acks: HashMap::new(),
                reinit_go: HashSet::new(),
                mirrors: spec.mirrors,
                resolutions: HashMap::new(),
                names: program.arrays.iter().map(|d| d.name.clone()).collect(),
                finished: false,
                syncing: false,
                shutdown: false,
                stats: WorkerStats::default(),
                net: Network::new(spec.network, spec.n_pes),
                cur_phase: 0,
                cur_stmt: 0,
                wait_edges: Vec::new(),
            },
        }
    }

    /// Owner of a statement instance — the one screening routine both the
    /// execution loop and the reduction pre-pass call, so the two can never
    /// disagree on who runs what.
    ///
    /// Affine anchors resolve arithmetically; indirect anchors resolve
    /// their gathered subscript through the non-counting resolution store
    /// ([`WorkerMem::resolve_load`]); anchorless statements are dealt
    /// round-robin with `rr`, which every worker advances identically.
    fn stmt_owner(&mut self, stmt: &Stmt, ivs: &[i64], rr: &mut usize) -> usize {
        let resolved =
            self.map
                .resolved_anchor_owner(self.program, stmt, ivs, &mut Resolve(&mut self.mem));
        match resolved {
            Ok(Some(pe)) => pe,
            Ok(None) => {
                let pe = *rr % self.n_pes;
                *rr += 1;
                pe
            }
            // Data-dependent resolution failure (out-of-bounds subscript,
            // index cell the program never defines): tear the run down in
            // an orderly way — the engine reports it as a typed error.
            Err(e) => self.mem.fail(format!("anchor resolution failed: {e}")),
        }
    }

    fn run_nest(&mut self, seq: u64, nest: &'p LoopNest) {
        // Pre-pass: reduction metadata (ops + participant sets), computed
        // identically on every worker from the static screening. Uses a
        // scratch round-robin counter from the same snapshot the execution
        // loop starts at, and the same `stmt_owner` routine, so both passes
        // assign every instance to the same PE.
        let reduce_meta: Vec<(usize, ReduceOp)> = nest
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Reduce { target, op, .. } => Some((target.0, *op)),
                _ => None,
            })
            .collect();
        let mut participants: HashMap<usize, Vec<bool>> = HashMap::new();
        if !reduce_meta.is_empty() {
            for &(sid, _) in &reduce_meta {
                participants.insert(sid, vec![false; self.n_pes]);
            }
            let mut rr = self.rr;
            nest.for_each_iteration_ctl(&mut |ivs: &[i64]| {
                for (si, stmt) in nest.body.iter().enumerate() {
                    self.mem.cur_stmt = si;
                    let owner = self.stmt_owner(stmt, ivs, &mut rr);
                    if let Stmt::Reduce { target, .. } = stmt {
                        participants.get_mut(&target.0).expect("seeded")[owner] = true;
                    }
                }
            });
        }

        // Local partial accumulators.
        let mut partial: HashMap<usize, f64> = reduce_meta
            .iter()
            .map(|&(sid, op)| (sid, op.identity()))
            .collect();

        let me = self.mem.me;
        let mut rr = self.rr;
        nest.for_each_iteration_ctl(&mut |ivs: &[i64]| {
            for (si, stmt) in nest.body.iter().enumerate() {
                self.mem.cur_stmt = si;
                let owner = self.stmt_owner(stmt, ivs, &mut rr);
                if owner != me {
                    continue;
                }
                match stmt {
                    Stmt::Assign { target, value } => {
                        let v = self
                            .ctx
                            .eval(value, ivs, &mut self.mem)
                            .unwrap_or_else(|e| self.mem.fail(e.to_string()));
                        let addr = self
                            .ctx
                            .resolve_addr(target, ivs, &mut self.mem)
                            .unwrap_or_else(|e| self.mem.fail(e.to_string()));
                        self.mem.local_write(target.array.0, addr, v);
                    }
                    Stmt::Reduce { target, op, value } => {
                        let v = self
                            .ctx
                            .eval(value, ivs, &mut self.mem)
                            .unwrap_or_else(|e| self.mem.fail(e.to_string()));
                        let acc = partial.get_mut(&target.0).expect("seeded");
                        *acc = op.combine(*acc, v);
                    }
                }
            }
        });
        self.rr = rr;

        // Vector→scalar collection at the host PE (§9), then broadcast.
        for &(sid, op) in &reduce_meta {
            let host = host_of(sid, self.n_pes);
            let parts = &participants[&sid];
            let remote_contributors = parts
                .iter()
                .enumerate()
                .filter(|&(pe, &p)| p && pe != host)
                .count();
            if me == host {
                let mut acc = if parts[me] {
                    partial[&sid]
                } else {
                    op.identity()
                };
                self.mem.serve_until(|m| {
                    m.partials_inbox.get(&(sid, seq)).map(Vec::len).unwrap_or(0)
                        >= remote_contributors
                });
                for v in self
                    .mem
                    .partials_inbox
                    .remove(&(sid, seq))
                    .unwrap_or_default()
                {
                    acc = op.combine(acc, v);
                }
                for pe in 0..self.n_pes {
                    if pe != host {
                        self.mem.stats.broadcast_messages += 1;
                        self.mem.send(
                            pe,
                            Msg::ScalarValue {
                                scalar: sid,
                                seq,
                                value: acc,
                            },
                        );
                    }
                }
                self.ctx.scalars[sid] = acc;
            } else {
                if parts[me] {
                    let value = partial[&sid];
                    self.mem.stats.reduction_messages += 1;
                    self.mem.net.record_message(me, host);
                    self.mem.send(
                        host,
                        Msg::Partial {
                            scalar: sid,
                            seq,
                            value,
                            from: me,
                        },
                    );
                }
                self.mem
                    .serve_until(|m| m.scalar_ready.contains_key(&(sid, seq)));
                let v = self.mem.scalar_ready[&(sid, seq)];
                self.ctx.scalars[sid] = v;
            }
        }
    }

    fn run_reinit(&mut self, a: usize) {
        let me = self.mem.me;
        let host = host_of(a, self.n_pes);
        // Entering the barrier: a reader already deferred on one of our
        // cells (any array) is blocked and can never send its own reinit
        // request, so the barrier would never release and we would never
        // write again — a guaranteed deadlock. Abort instead.
        if let Some((&(array, addr), _)) = self.mem.cell_waiters.iter().next() {
            let label = self.mem.array_label(array);
            self.mem.fail(format!(
                "re-initialization barrier reached with a deferred read of \
                 {label}[{addr}] pending, which this program never defines — \
                 a dangling I-structure deferral (sapp lint: SA004)"
            ));
        }
        self.mem.syncing = true;
        if me == host {
            *self.mem.reinit_requests.entry(a).or_insert(0) += 1; // own request
            let n = self.n_pes;
            self.mem
                .serve_until(|m| m.reinit_requests.get(&a).copied().unwrap_or(0) >= n);
            self.mem.reinit_requests.remove(&a);
            let new_gen = self.mem.gens[a] + 1;
            for pe in 0..self.n_pes {
                if pe != host {
                    self.mem.stats.reinit_messages += 1;
                    self.mem.net.record_message(me, pe);
                    self.mem.send(
                        pe,
                        Msg::ReinitRelease {
                            array: a,
                            generation: new_gen,
                        },
                    );
                }
            }
            self.apply_release(a, new_gen);
            // Second round: hold every PE at the barrier until all of them
            // have applied their release. Without it, a released PE could
            // enter the next nest and fetch from a peer still waiting on
            // its own release — and that peer would misread the legitimate
            // fetch as a deadlocked pre-barrier reader (or, for the
            // re-initialized array itself, serve a stale-generation frame).
            self.mem
                .serve_until(|m| m.reinit_acks.get(&a).copied().unwrap_or(0) >= n - 1);
            self.mem.reinit_acks.remove(&a);
            for pe in 0..self.n_pes {
                if pe != host {
                    self.mem.stats.sync_messages += 1;
                    self.mem.send(pe, Msg::ReinitGo { array: a });
                }
            }
            self.mem.syncing = false;
        } else {
            self.mem.stats.reinit_messages += 1;
            self.mem.net.record_message(me, host);
            self.mem
                .send(host, Msg::ReinitRequest { array: a, from: me });
            self.mem.serve_until(|m| m.reinit_released.contains_key(&a));
            let new_gen = self.mem.reinit_released.remove(&a).expect("just observed");
            self.apply_release(a, new_gen);
            // From here on, deferral is safe again: the release proves
            // every PE reached the barrier, so an undefined-cell fetch
            // arriving while we wait for the go can only come from a PE
            // the host already let through — it will be satisfied once we
            // run the next phase.
            self.mem.syncing = false;
            self.mem.stats.sync_messages += 1;
            self.mem.send(host, Msg::ReinitAck { array: a, from: me });
            self.mem.serve_until(|m| m.reinit_go.contains(&a));
            self.mem.reinit_go.remove(&a);
        }
    }

    fn apply_release(&mut self, a: usize, new_gen: u32) {
        // Unreachable via the entry check + the `syncing` guard in
        // serve_fetch, but kept as an orderly teardown rather than an
        // assert: a stale waiter here would deadlock its requester.
        if self.mem.cell_waiters.keys().any(|&(arr, _)| arr == a) {
            let label = self.mem.array_label(a);
            self.mem.fail(format!(
                "re-initialization of {label} with deferred readers pending"
            ));
        }
        self.mem.gens[a] = new_gen;
        for ((arr, _), frame) in self.mem.frames.iter_mut() {
            if *arr == a {
                frame.clear();
            }
        }
        self.mem.cache.invalidate_array(a);
        self.mem.resolutions.retain(|k, _| k.array != a);
    }

    /// Execute the whole program, then serve peers until shutdown.
    pub fn run(mut self, done: &Sender<usize>) -> WorkerResult {
        for (pi, phase) in self.program.phases.iter().enumerate() {
            self.mem.cur_phase = pi;
            match phase {
                Phase::Loop(nest) => self.run_nest(pi as u64, nest),
                Phase::Reinit(id) => self.run_reinit(id.0),
            }
        }
        // From here on this worker only serves; a reader still queued on
        // one of its cells (necessarily undefined, or it would have been
        // released) can never be satisfied — owner-computes makes this
        // worker the cell's only producer, and it has run out of program.
        self.mem.finished = true;
        if let Some((&(array, addr), _)) = self.mem.cell_waiters.iter().next() {
            let label = self.mem.array_label(array);
            self.mem.fail(format!(
                "deferred read of {label}[{addr}], which this program never \
                 defines — a dangling I-structure deferral (sapp lint: SA004)"
            ));
        }
        done.send(self.mem.me).expect("coordinator gone");
        self.mem.serve_until(|m| m.shutdown);
        WorkerResult {
            stats: self.mem.stats,
            net: self.mem.net,
            frames: self.mem.frames,
            scalars: self.ctx.scalars,
            wait_edges: self.mem.wait_edges,
        }
    }
}

/// Extension trait so the execute loop above can use a `&mut FnMut` without
/// fighting the borrow checker around `self`.
trait ForEachCtl {
    fn for_each_iteration_ctl(&self, f: &mut dyn FnMut(&[i64]));
}

impl ForEachCtl for LoopNest {
    fn for_each_iteration_ctl(&self, f: &mut dyn FnMut(&[i64])) {
        self.for_each_iteration(|ivs| f(ivs));
    }
}
