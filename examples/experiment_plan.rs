//! The composable experiment-plan API, end to end: build a typed-axis
//! grid, evaluate it through three different oracles (compiled access
//! replay with auto fallback, counting interpreter, real threads), pivot
//! the results, and run the automatic scheme search — exhaustive and
//! guided (seeded annealing through the memoizing oracle cache).
//!
//! ```text
//! cargo run --release --example experiment_plan
//! ```

use sapp::core::plan::ExperimentPlan;
use sapp::core::report::{ascii_chart, json, markdown_table};
use sapp::core::results::Column;
use sapp::core::search::strategy::{Searcher, Strategy, StrategyOracle, StrategyParams};
use sapp::core::search::{search, SearchSpace};
use sapp::core::{CountingOracle, FastCountingOracle};
use sapp::loops::suite;
use sapp::runtime::ThreadOracle;

fn main() {
    let k12 = suite()
        .into_iter()
        .find(|k| k.code == "K12")
        .expect("K12 in suite");

    // One plan: page sizes × cache on/off × PE counts, lazily enumerated
    // and evaluated concurrently by the auto-select counting oracle (the
    // compiled access replay here — K12 is affine — with transparent
    // interpreter fallback; counts are bit-identical either way, proven
    // by `tests/replay_vs_interp.rs`).
    let plan = ExperimentPlan::new()
        .page_sizes(&[32, 64])
        .cache_flags(&[true, false])
        .pes(&[1, 2, 4, 8, 16, 32]);
    println!("grid: {} points\n", plan.len());
    let results = plan
        .run(&k12.program, &FastCountingOracle::default())
        .expect("sweep");
    let interp = plan.run(&k12.program, &CountingOracle).expect("sweep");
    assert_eq!(results.records(), interp.records(), "engines agree");

    // Typed columns feed every report emitter.
    let cols = [
        Column::Pes,
        Column::PageSize,
        Column::Cached,
        Column::RemotePct,
        Column::Messages,
    ];
    let headers = Column::headers(&cols);
    println!("{}", markdown_table(&headers, &results.rows(&cols)));

    // Pivot into figure series without caring about axis order.
    let series = results.series(
        |r| {
            format!(
                "{} ps {}",
                if r.cfg.cached() { "Cache" } else { "No Cache" },
                r.cfg.page_size
            )
        },
        |r| r.cfg.n_pes as f64,
        |r| r.remote_pct,
    );
    println!(
        "{}",
        ascii_chart("K12: % of Reads Remote vs PEs", &series, 48, 12)
    );

    // The same grid shape on a different backend: real worker threads.
    let real = ExperimentPlan::new()
        .pes(&[1, 2, 4])
        .run(&k12.program, &ThreadOracle)
        .expect("runtime");
    println!(
        "thread-runtime remote% at 4 PEs: {:.2}%\n",
        real.find(|r| r.cfg.n_pes == 4).expect("point").remote_pct
    );

    // Automatic scheme search (the Automap-style ROADMAP item), as JSON:
    // balanced objective by default, replay engine underneath.
    let best = search(
        &k12.program,
        &SearchSpace::default(),
        &FastCountingOracle::default(),
    )
    .expect("search");
    let row = vec![vec![
        "K12".to_string(),
        best.scheme.name(),
        best.page_size.to_string(),
        format!("{:.4}", best.remote_pct),
        format!("{:.3}", best.write_balance),
        best.evaluated.to_string(),
    ]];
    println!(
        "{}",
        json(
            &[
                "kernel",
                "best_scheme",
                "best_page_size",
                "remote_pct",
                "write_balance",
                "evaluated"
            ],
            &row
        )
    );

    // Guided search: seeded annealing over the same space through the
    // memoizing oracle cache. The walk is a pure function of
    // (program, space, seed, budget), so the warm re-query replays the
    // identical winner with zero new oracle calls.
    let searcher = Searcher::new(
        &SearchSpace::default(),
        Box::<StrategyOracle>::default(),
        StrategyParams {
            strategy: Strategy::Anneal,
            seed: 7,
            budget: 16,
            ..StrategyParams::default()
        },
    )
    .expect("space is valid");
    let rep = searcher.search(&k12.program).expect("anneal");
    let warm = searcher.search(&k12.program).expect("re-query");
    assert_eq!(warm.best, rep.best, "warm replay diverged");
    assert_eq!(warm.oracle_evals, 0, "warm replay paid the oracle");
    println!(
        "anneal(seed 7, budget 16): {} on page {} after {} oracle \
         evaluations; cached re-query paid {}",
        rep.best.scheme.name(),
        rep.best.page_size,
        rep.oracle_evals,
        warm.oracle_evals
    );
}
