//! Sweep the whole Livermore suite: static class, measured (dynamic) class,
//! and remote-read percentages with/without the paper's cache — the §8
//! summary reproduced as one table.
//!
//! ```text
//! cargo run --release --example livermore_sweep
//! ```

use sapp::core::classify::classify_dynamic;
use sapp::core::report::{fmt_pct, markdown_table};
use sapp::core::simulate;
use sapp::loops::suite;
use sapp::machine::MachineConfig;

fn main() {
    let mut rows = Vec::new();
    for k in suite() {
        let cached = simulate(&k.program, &MachineConfig::new(16, 32)).expect("sim");
        let uncached =
            simulate(&k.program, &MachineConfig::new(16, 32).with_cache_elems(0)).expect("sim");
        let dynamic = classify_dynamic(&k.program, 32).expect("sweep");
        rows.push(vec![
            k.code.to_string(),
            k.name.to_string(),
            k.class_abbrev().to_string(),
            dynamic.class.abbrev().to_string(),
            k.paper_class.unwrap_or("—").to_string(),
            fmt_pct(cached.remote_pct()),
            fmt_pct(uncached.remote_pct()),
        ]);
    }
    println!("Livermore Loops under automatic SA partitioning (16 PEs, ps 32, cache 256):\n");
    println!(
        "{}",
        markdown_table(
            &[
                "kernel",
                "name",
                "static",
                "measured",
                "paper",
                "remote% cache",
                "remote% none"
            ],
            &rows
        )
    );
    println!("MD = matched, SD = skewed, CD = cyclic, RD = random (paper §7.1)");
}
