//! Quickstart: express a FORTRAN-style loop, let the system partition it,
//! and read off the paper's access statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sapp::core::{simulate, verify_against_reference};
use sapp::ir::index::iv;
use sapp::ir::{classify_program, InitPattern, ProgramBuilder};
use sapp::machine::MachineConfig;

fn main() {
    // DO 1 k = 1,n : X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))
    // — the paper's Hydro Fragment (Livermore kernel 1).
    let n = 1001usize;
    let mut b = ProgramBuilder::new("hydro fragment");
    let q = b.param("Q", 0.5);
    let r = b.param("R", 0.25);
    let t = b.param("T", 0.125);
    let y = b.input("Y", &[n + 1], InitPattern::Wavy);
    let zx = b.input("ZX", &[n + 12], InitPattern::Harmonic);
    let x = b.output("X", &[n + 1]);
    b.nest("k1", &[("k", 1, n as i64)], |nb| {
        let rhs = nb.par(q)
            + nb.read(y, [iv(0)])
                * (nb.par(r) * nb.read(zx, [iv(0).plus(10)])
                    + nb.par(t) * nb.read(zx, [iv(0).plus(11)]));
        nb.assign(x, [iv(0)], rhs);
    });
    let program = b.finish();

    // The compiler side: classify the access pattern statically.
    let report = classify_program(&program);
    println!(
        "static access class: {} ({})",
        report.class,
        report.class.abbrev()
    );

    // The machine side: 8 PEs, 32-element pages, the paper's 256-element
    // LRU cache, modulo placement. Owner-computes does the rest.
    for (label, cfg) in [
        ("with cache   ", MachineConfig::new(8, 32)),
        (
            "without cache",
            MachineConfig::new(8, 32).with_cache_elems(0),
        ),
    ] {
        let rep = simulate(&program, &cfg).expect("simulation");
        println!(
            "{label}: writes {:>5}  local {:>5}  cached {:>5}  remote {:>5}  → {:>6.2}% remote",
            rep.stats.writes(),
            rep.stats.local_reads(),
            rep.stats.cached_reads(),
            rep.stats.remote_reads(),
            rep.remote_pct(),
        );
    }

    // And the values are exactly what a sequential run produces.
    verify_against_reference(&program, &MachineConfig::new(8, 32))
        .expect("distributed result equals the sequential reference");
    println!("verified: distributed execution ≡ sequential reference");
}
