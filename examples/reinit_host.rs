//! Array reuse under single assignment: the automatic conversion tool
//! (paper §5) applied to a time-stepped loop, comparing its two strategies
//! — array *expansion* (more memory, no synchronization) versus
//! *re-initialization* through the host-processor protocol (constant
//! memory, 2·(N−1) messages per step).
//!
//! ```text
//! cargo run --release --example reinit_host
//! ```

use sapp::core::simulate;
use sapp::ir::index::iv;
use sapp::ir::ssa::{convert_to_sa, verify_single_assignment, SsaMode};
use sapp::ir::{InitPattern, Program, ProgramBuilder};
use sapp::machine::MachineConfig;

/// A conventional (von Neumann) program: SM is fully rewritten each step
/// from the immutable BASE — classic array reuse that violates single
/// assignment as written.
fn time_stepped(n: usize, steps: usize) -> Program {
    let mut b = ProgramBuilder::new("time-stepped smoothing");
    let base = b.input("BASE", &[n + 2], InitPattern::Wavy);
    let sm = b.input("SM", &[n + 2], InitPattern::Zero);
    for step in 0..steps {
        let w = 1.0 / (step + 2) as f64;
        b.nest(format!("step{step}"), &[("k", 1, n as i64)], |nb| {
            let rhs = (nb.read(base, [iv(0).plus(-1)])
                + nb.read(base, [iv(0)])
                + nb.read(base, [iv(0).plus(1)]))
                * w;
            nb.assign(sm, [iv(0)], rhs);
        });
    }
    b.finish()
}

fn main() {
    let program = time_stepped(512, 4);
    assert!(
        !verify_single_assignment(&program),
        "the conventional program re-writes SM — not single assignment"
    );

    let cfg = MachineConfig::new(8, 32);
    println!("Converting a 4-step array-reusing loop to single assignment (8 PEs):\n");

    // Strategy 1: array expansion (§5's "translators will tend to increase
    // the amount of memory used for array storage").
    let expanded = convert_to_sa(&program, SsaMode::Expand).expect("expandable");
    assert!(verify_single_assignment(&expanded.program));
    let rep = simulate(&expanded.program, &cfg).expect("sim");
    println!(
        "expansion : +{} version arrays, footprint {:>6} elems, reinit messages {:>2}",
        expanded.versions_added,
        expanded.program.total_elements(),
        rep.stats.reinit_messages,
    );

    // Strategy 2: re-initialization via the host processor (§5's
    // "artificial synchronization point" with constant memory).
    let reinited = convert_to_sa(&program, SsaMode::Reinit).expect("reinit-convertible");
    assert!(verify_single_assignment(&reinited.program));
    let rep = simulate(&reinited.program, &cfg).expect("sim");
    println!(
        "reinit    : +{} reinit phases,  footprint {:>6} elems, reinit messages {:>2}",
        reinited.reinits_added,
        reinited.program.total_elements(),
        rep.stats.reinit_messages,
    );
    println!(
        "\nEach re-initialization costs 2·(N−1) = 14 messages: N−1 collection\n\
         requests at SM's host PE plus the N−1 release broadcasts (paper §5)."
    );
}
