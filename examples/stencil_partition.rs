//! Domain scenario: tune page size and placement for a 2-D heat-diffusion
//! stencil — the "programmer- or compiler-selectable partitioning" the
//! paper's future work proposes (§9), run on the registry's scale-class
//! 5-point Jacobi workload (`ST5`) through the compiled replay engine.
//!
//! ```text
//! cargo run --release --example stencil_partition
//! ```

use sapp::core::experiment::partition_sweep;
use sapp::core::replay::counts_or_simulate;
use sapp::core::report::{fmt_pct, markdown_table};
use sapp::loops::stencil::build_jacobi5;
use sapp::machine::{MachineConfig, PartitionScheme};

fn main() {
    let program = build_jacobi5(128, 128, 1).program;
    let n_pes = 16;

    // Page-size sweep (paper §9: "allowing the programmer or compiler to
    // select the page size might prove useful").
    let mut rows = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    for ps in [8usize, 16, 32, 64, 128, 256] {
        let rep = counts_or_simulate(&program, &MachineConfig::new(n_pes, ps)).expect("sim");
        let pct = rep.remote_pct();
        if best.map(|(_, b)| pct < b).unwrap_or(true) {
            best = Some((ps, pct));
        }
        rows.push(vec![
            ps.to_string(),
            fmt_pct(pct),
            rep.stats.remote_reads().to_string(),
            rep.network_messages.to_string(),
        ]);
    }
    println!("Page-size tuning for a 128×128 Jacobi stencil on {n_pes} PEs:\n");
    println!(
        "{}",
        markdown_table(
            &["page size", "remote %", "remote reads", "messages"],
            &rows
        )
    );
    let (bps, bpct) = best.expect("swept");
    println!("→ best page size: {bps} ({})\n", fmt_pct(bpct));

    // Placement sweep: row-aligned block placement beats modulo for
    // stencils — exactly the paper's modulo-vs-division observation.
    let per = partition_sweep(
        &program,
        n_pes,
        bps,
        &[
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 2 },
            PartitionScheme::BlockCyclic { block_pages: 4 },
        ],
    )
    .expect("sweep");
    let rows: Vec<Vec<String>> = per
        .into_iter()
        .map(|(name, pct)| vec![name, fmt_pct(pct)])
        .collect();
    println!("Placement comparison at page size {bps}:\n");
    println!("{}", markdown_table(&["scheme", "remote %"], &rows));
}
