//! Run the full 1-D Particle-in-Cell kernel — gathers *and* the true
//! scatter deposit, whose write target goes through the particle
//! permutation — on real threads: one OS thread per PE, channels as the
//! network, synchronization done *entirely* by single-assignment memory.
//!
//! ```text
//! cargo run --release --example threaded_pic
//! ```

use sapp::ir::{interpret, ProgramResult};
use sapp::loops::k14_pic1d;
use sapp::runtime::{execute, RuntimeConfig};

fn main() {
    let kernel = k14_pic1d::build_scatter(1001);
    let golden = interpret(&kernel.program).expect("reference");

    for n_pes in [1usize, 2, 4, 8] {
        let cfg = RuntimeConfig::paper(n_pes, 32);
        let rep = execute(&kernel.program, &cfg).expect("runtime");
        let got = ProgramResult {
            arrays: rep.arrays.clone(),
            scalars: rep.scalars.clone(),
            writes: 0,
            reads: 0,
        };
        golden
            .assert_matches(&got, 1e-9)
            .expect("values match the sequential reference");
        let s = &rep.stats;
        println!(
            "{n_pes:>2} threads: writes {:>5}  local {:>6}  cached {:>6}  remote {:>5}  \
             messages {:>6}  refetches {:>3}  → verified ✓",
            s.writes(),
            s.local_reads(),
            s.cached_reads(),
            s.remote_reads(),
            rep.messages,
            s.partial_refetches,
        );
    }
    println!(
        "\nNo locks or barriers anywhere: write-once cells defer readers until\n\
         the producer writes (paper §3), and cached pages never go stale (§4)."
    );
}
