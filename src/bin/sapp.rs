//! `sapp` — command-line front end to the partitioning system.
//!
//! ```text
//! sapp list                       # kernels with their classes
//! sapp show K18                   # pseudo-FORTRAN of a kernel
//! sapp classify K6                # static + measured classification
//! sapp simulate K1 --pes 8 --page 32 [--no-cache]
//! sapp sweep K2 --page 32         # remote % across PE counts
//! sapp timing K14 --page 32       # estimated speedup curve
//! ```

use sapp::core::classify::classify_dynamic;
use sapp::core::experiment::{pe_sweep, speedup_sweep};
use sapp::core::report::{fmt_pct, markdown_table};
use sapp::core::simulate;
use sapp::ir::{classify_program, pretty};
use sapp::loops::{suite, Kernel};
use sapp::machine::{AccessCosts, MachineConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sapp <list|show|classify|simulate|sweep|timing> [KERNEL] \
         [--pes N] [--page N] [--cache N] [--no-cache]"
    );
    std::process::exit(2);
}

struct Opts {
    pes: usize,
    page: usize,
    cache: usize,
    no_cache: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        pes: 16,
        page: 32,
        cache: 256,
        no_cache: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pes" => {
                o.pes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--page" => {
                o.page = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cache" => {
                o.cache = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-cache" => o.no_cache = true,
            _ => usage(),
        }
    }
    o
}

fn find_kernel(code: &str) -> Kernel {
    suite()
        .into_iter()
        .find(|k| k.code.eq_ignore_ascii_case(code))
        .unwrap_or_else(|| {
            eprintln!("unknown kernel {code}; try `sapp list`");
            std::process::exit(2);
        })
}

fn config(o: &Opts) -> MachineConfig {
    let base = MachineConfig::paper(o.pes, o.page).with_cache_elems(o.cache);
    if o.no_cache {
        MachineConfig::paper_no_cache(o.pes, o.page)
    } else {
        base
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            let rows: Vec<Vec<String>> = suite()
                .iter()
                .map(|k| {
                    vec![
                        k.code.to_string(),
                        k.name.to_string(),
                        k.class_abbrev().to_string(),
                        k.paper_class.unwrap_or("—").to_string(),
                        k.program.total_elements().to_string(),
                    ]
                })
                .collect();
            println!(
                "{}",
                markdown_table(&["kernel", "name", "class", "paper", "elements"], &rows)
            );
        }
        "show" => {
            let k = find_kernel(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            print!("{}", pretty::program_to_string(&k.program));
        }
        "classify" => {
            let k = find_kernel(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let stat = classify_program(&k.program);
            println!("static : {} ({})", stat.class, stat.class.abbrev());
            for nest in &stat.nests {
                println!(
                    "  nest {:<18} {} (revisit: {})",
                    nest.label, nest.class, nest.sweep_revisit
                );
            }
            let dynamic = classify_dynamic(&k.program, 32).expect("sweep");
            println!("measured: {} — curve:", dynamic.class.abbrev());
            for p in dynamic.curve {
                println!(
                    "  {:>3} PEs: {} cached / {} uncached",
                    p.n_pes,
                    fmt_pct(p.cached_pct),
                    fmt_pct(p.uncached_pct)
                );
            }
        }
        "simulate" => {
            let k = find_kernel(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let o = parse_opts(&args[2..]);
            let rep = simulate(&k.program, &config(&o)).expect("simulation");
            println!(
                "writes {}  local {}  cached {}  remote {}  → {} remote",
                rep.stats.writes(),
                rep.stats.local_reads(),
                rep.stats.cached_reads(),
                rep.stats.remote_reads(),
                fmt_pct(rep.remote_pct()),
            );
            println!(
                "messages {}  hops {}  max link load {}",
                rep.network_messages, rep.network_hops, rep.max_link_load
            );
        }
        "sweep" => {
            let k = find_kernel(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let o = parse_opts(&args[2..]);
            // All 14 grid points simulate concurrently; the result order is
            // the sequential one (cached block first, then uncached).
            let pes = [1usize, 2, 4, 8, 16, 32, 64];
            let pts = pe_sweep(&k.program, &pes, &[o.page], &[true, false]).expect("sweep");
            let (cached, uncached) = pts.split_at(pes.len());
            let rows: Vec<Vec<String>> = cached
                .iter()
                .zip(uncached)
                .map(|(c, u)| {
                    vec![
                        c.n_pes.to_string(),
                        fmt_pct(c.remote_pct),
                        fmt_pct(u.remote_pct),
                    ]
                })
                .collect();
            println!("{}", markdown_table(&["PEs", "cache", "no cache"], &rows));
        }
        "timing" => {
            let k = find_kernel(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let o = parse_opts(&args[2..]);
            let sp = speedup_sweep(
                &k.program,
                &[1, 2, 4, 8, 16, 32],
                o.page,
                AccessCosts::default(),
            )
            .expect("timing");
            let rows: Vec<Vec<String>> = sp
                .into_iter()
                .map(|(n, s)| vec![n.to_string(), format!("{s:.2}×")])
                .collect();
            println!("{}", markdown_table(&["PEs", "speedup"], &rows));
        }
        _ => usage(),
    }
}
