//! `sapp` — command-line front end to the partitioning system.
//!
//! ```text
//! sapp list                       # every workload with class and size
//! sapp show K18                   # pseudo-FORTRAN of a kernel
//! sapp classify K6                # static + measured classification
//! sapp simulate K1 --pes 8 --page 32 [--no-cache]
//! sapp sweep K2 --page 32         # remote % across PE counts
//! sapp sweep ST5 --size 96        # scale workloads size like any kernel
//! sapp search [--kernel K12]      # best scheme × page size per kernel
//! sapp timing K14 --page 32       # estimated speedup curve
//! sapp lint K13                   # static diagnostics for one kernel
//! sapp lint --all --format json   # CI gate: exit 1 on any error finding
//! sapp lint --all --deny-warnings --allow PL001   # strict gate, PL001 ok
//! sapp graph K5                   # dependence graph as GraphViz DOT
//! sapp graph K12 --format json    # graph + work/span summary as JSON
//! ```
//!
//! Workloads resolve against the sized registry (`sapp::loops::workloads`),
//! which includes the scale-class stencil family (`ST5`, `ST9`, `ST7`) and
//! the CSR SpMV pair (`SPMV`, `SPMVD`) beyond the paper's Livermore suite.
//! `--size N` rescales any workload (loop length, grid edge, or matrix
//! rows/cols); `--dims AxB[xC]` sets exact grid extents for the stencils
//! (or `ROWSxCOLS` for the SpMV pair); `--sweeps N` overrides the stencil
//! sweep count (registry default otherwise). Row degrees stay at the
//! registry's official values.
//!
//! `--partition SCHEME` pins the ownership scheme for `simulate`, `sweep`
//! and `lint`: `modulo`, `block`, `blockcyclic:B`, `rowband`, or
//! `tile2d:RxC` (grid-tiled ownership; see `sapp::machine::Placement`).
//! `--network TOPO` picks the link model pricing every modeled message:
//! `ideal`, `crossbar`, `bus`, `ring`, `mesh2d`, `torus2d`, `hypercube`.
//!
//! `sweep` and `search` accept `--format {table,csv,json}` and run their
//! grids through the composable plan API (`sapp::core::plan`).
//!
//! `simulate`, `sweep` and `search` accept
//! `--engine {interp,replay,auto,static,thread}` selecting the backend: the
//! statement-by-statement counting interpreter, the compiled access replay
//! (`sapp::core::replay` — ~10–100× faster for statically classifiable
//! nests, errors on the rest), auto-select (replay with transparent
//! interpreter fallback; the default), the **zero-execution static
//! estimator** (`sapp::lint::estimate` — closed-form counts for affine
//! programs, uncached points only), or **real worker threads**
//! (`sapp::runtime::ThreadOracle` — one OS thread per PE, messages on real
//! channels; LRU caches, with every modeled send priced through the
//! configured topology's link model, so hop and link-load figures are
//! real measurements).
//! `search` additionally accepts `--objective {balanced,remote}` (the
//! legacy remote-%-only objective is `remote`) and
//! `--strategy {exhaustive,anneal,propagate}` with `--seed S` and
//! `--budget K` (`sapp::core::search::strategy`): seeded simulated
//! annealing and Automap-style write-to-read propagation over the
//! candidate grid, behind a memoizing oracle cache shared across the
//! kernels of one invocation. The candidate space is materialized once
//! per invocation and kernels are searched in parallel over it.
//!
//! `sapp lint [KERNEL|--all]` runs the static analysis passes (write-once
//! verification, progress and partition-legality checks, deadlock-freedom
//! via the dependence graph) and prints the diagnostics; kernels lint in
//! parallel under `--all` and the summary line reports wall-clock.
//! `--deny-warnings` promotes warnings into the gate and repeatable
//! `--allow CODE` flags exclude specific codes from gating (they still
//! print); `sapp lint --help` documents the exit codes. `--format json`
//! emits the structured diagnostic model.
//!
//! `sapp graph KERNEL [--format dot|json]` renders the static
//! generation-level dependence graph (`sapp::lint::depgraph`): DOT for
//! GraphViz by default, or JSON carrying the nodes, edges and — when the
//! program is statically analyzable — the work/span/parallelism summary.

use sapp::core::classify::classify_dynamic;
use sapp::core::experiment::speedup_sweep;
use sapp::core::oracle::OracleError;
use sapp::core::parallel::par_map;
use sapp::core::plan::{ExperimentPlan, PlanError};
use sapp::core::replay::{counts, counts_or_simulate, CountReport};
use sapp::core::report::{csv, fmt_pct, json, markdown_table};
use sapp::core::search::strategy::{
    Searcher, Strategy, StrategyOracle, StrategyParams, DEFAULT_BUDGET, DEFAULT_SEED,
};
use sapp::core::search::{Objective, SearchSpace};
use sapp::core::{simulate, Engine, FastCountingOracle, Oracle, StaticOracle};
use sapp::ir::{classify_program, pretty};
use sapp::loops::{suite, workloads, Kernel, Size, Workload};
use sapp::machine::{AccessCosts, MachineConfig, NetworkTopology, PartitionScheme};
use sapp::runtime::ThreadOracle;

fn usage() -> ! {
    eprintln!(
        "usage: sapp <list|show|classify|simulate|sweep|search|timing|lint|graph> [KERNEL] \
         [--all] [--pes N] [--page N] [--cache N] [--no-cache] [--kernel CODE] \
         [--size N] [--dims AxB[xC]] [--sweeps N] \
         [--partition modulo|block|blockcyclic:B|rowband|tile2d:RxC] \
         [--network ideal|crossbar|bus|ring|mesh2d|torus2d|hypercube] \
         [--format table|csv|json|dot] [--engine interp|replay|auto|static|thread] \
         [--objective balanced|remote] [--strategy exhaustive|anneal|propagate] \
         [--seed S] [--budget K] [--deny-warnings] [--allow CODE]"
    );
    std::process::exit(2);
}

/// `sapp lint --help`: flag and exit-code reference for the CI gate.
fn lint_help() -> ! {
    println!(
        "usage: sapp lint [KERNEL | --all] [--pes N] [--page N] \
         [--format table|csv|json] [--deny-warnings] [--allow CODE]...\n\
         \n\
         Runs every static analysis pass (write-once verification, progress\n\
         and partition legality, dependence-graph deadlock-freedom) on one\n\
         kernel or the whole registry (in parallel under --all).\n\
         \n\
         flags:\n\
         --deny-warnings   warning-severity findings also fail the gate\n\
         --allow CODE      exclude CODE (e.g. PL001) from gating; repeatable;\n\
         \u{20}                  allowed findings are still printed\n\
         \n\
         exit codes:\n\
         0  no gated findings (clean, or every finding --allow'ed)\n\
         1  at least one gated finding (error, or warning under\n\
         \u{20}   --deny-warnings)\n\
         2  usage error"
    );
    std::process::exit(0);
}

/// Which backend measures grid points: a counting engine, the static
/// estimator, or real threads.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EngineSel {
    Counting(Engine),
    Static,
    Thread,
}

impl EngineSel {
    fn parse(s: &str) -> Option<EngineSel> {
        match s {
            "static" => Some(EngineSel::Static),
            "thread" => Some(EngineSel::Thread),
            other => Engine::parse(other).map(EngineSel::Counting),
        }
    }

    /// The oracle evaluating plan grid points for this selection.
    fn oracle(self) -> Box<dyn Oracle> {
        match self {
            EngineSel::Counting(e) => Box::new(FastCountingOracle::with_engine(e)),
            EngineSel::Static => Box::new(StaticOracle),
            EngineSel::Thread => Box::new(ThreadOracle),
        }
    }
}

/// Output format for tabular results (plus GraphViz DOT, which only the
/// `graph` subcommand accepts).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Csv,
    Json,
    Dot,
}

impl Format {
    fn render(self, headers: &[&str], rows: &[Vec<String>]) -> String {
        match self {
            Format::Table => markdown_table(headers, rows),
            Format::Csv => csv(headers, rows),
            Format::Json => json(headers, rows),
            // DOT is a graph format, not a tabular one.
            Format::Dot => usage(),
        }
    }
}

struct Opts {
    pes: usize,
    page: usize,
    cache: usize,
    no_cache: bool,
    all: bool,
    kernel: Option<String>,
    size: Option<usize>,
    dims: Option<Vec<usize>>,
    sweeps: Option<usize>,
    partition: Option<PartitionScheme>,
    network: Option<NetworkTopology>,
    format: Format,
    engine: EngineSel,
    objective: Objective,
    strategy: Strategy,
    seed: u64,
    budget: usize,
    deny_warnings: bool,
    allow: Vec<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        pes: 16,
        page: 32,
        cache: 256,
        no_cache: false,
        all: false,
        kernel: None,
        size: None,
        dims: None,
        sweeps: None,
        partition: None,
        network: None,
        format: Format::Table,
        engine: EngineSel::Counting(Engine::Auto),
        objective: Objective::default(),
        strategy: Strategy::Exhaustive,
        seed: DEFAULT_SEED,
        budget: DEFAULT_BUDGET,
        deny_warnings: false,
        allow: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pes" => {
                o.pes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--page" => {
                o.page = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cache" => {
                o.cache = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-cache" => o.no_cache = true,
            "--all" => o.all = true,
            "--kernel" => o.kernel = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--size" => {
                o.size = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--dims" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let parts: Option<Vec<usize>> = spec
                    .split(['x', 'X', '×'])
                    .map(|p| p.parse().ok())
                    .collect();
                match parts {
                    Some(d) if d.len() == 2 || d.len() == 3 => o.dims = Some(d),
                    _ => usage(),
                }
            }
            "--sweeps" => {
                o.sweeps = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--partition" => {
                o.partition = Some(
                    it.next()
                        .and_then(|v| parse_partition(v))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--network" => {
                o.network = Some(
                    it.next()
                        .and_then(|v| parse_network(v))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--format" => {
                o.format = match it.next().map(String::as_str) {
                    Some("table") => Format::Table,
                    Some("csv") => Format::Csv,
                    Some("json") => Format::Json,
                    Some("dot") => Format::Dot,
                    _ => usage(),
                }
            }
            "--deny-warnings" => o.deny_warnings = true,
            "--allow" => o
                .allow
                .push(it.next().unwrap_or_else(|| usage()).to_uppercase()),
            "--engine" => {
                o.engine = it
                    .next()
                    .and_then(|v| EngineSel::parse(v))
                    .unwrap_or_else(|| usage())
            }
            "--objective" => {
                o.objective = match it.next().map(String::as_str) {
                    Some("balanced") => Objective::default(),
                    Some("remote") => Objective::RemoteOnly,
                    _ => usage(),
                }
            }
            "--strategy" => {
                o.strategy = it
                    .next()
                    .and_then(|v| Strategy::parse(v))
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                o.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--budget" => {
                o.budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k: &usize| k > 0)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    o
}

/// Parse `--partition` specs: bare names plus the parameterised
/// `blockcyclic:B` and `tile2d:RxC` forms (`:` or `=` separators).
fn parse_partition(spec: &str) -> Option<PartitionScheme> {
    let (name, arg) = match spec.split_once([':', '=']) {
        Some((n, a)) => (n, Some(a)),
        None => (spec, None),
    };
    match (name, arg) {
        ("modulo", None) => Some(PartitionScheme::Modulo),
        ("block", None) => Some(PartitionScheme::Block),
        ("rowband", None) => Some(PartitionScheme::RowBand),
        ("blockcyclic", Some(a)) => {
            let block_pages: usize = a.parse().ok().filter(|&b| b > 0)?;
            Some(PartitionScheme::BlockCyclic { block_pages })
        }
        ("tile2d", arg) => {
            // Default tile if unspecified; otherwise RxC like --dims.
            let (tile_rows, tile_cols) = match arg {
                None => (64, 64),
                Some(a) => {
                    let (r, c) = a.split_once(['x', 'X', '×'])?;
                    (
                        r.parse().ok().filter(|&n: &usize| n > 0)?,
                        c.parse().ok().filter(|&n: &usize| n > 0)?,
                    )
                }
            };
            Some(PartitionScheme::Tile2D {
                tile_rows,
                tile_cols,
            })
        }
        _ => None,
    }
}

/// Parse `--network` topology names.
fn parse_network(spec: &str) -> Option<NetworkTopology> {
    match spec {
        "ideal" => Some(NetworkTopology::Ideal),
        "crossbar" => Some(NetworkTopology::Crossbar),
        "bus" => Some(NetworkTopology::Bus),
        "ring" => Some(NetworkTopology::Ring),
        "mesh2d" | "mesh" => Some(NetworkTopology::Mesh2D),
        "torus2d" | "torus" => Some(NetworkTopology::Torus2D),
        "hypercube" => Some(NetworkTopology::Hypercube),
        _ => None,
    }
}

fn find_workload(code: &str) -> Workload {
    sapp::loops::workload(code).unwrap_or_else(|| {
        eprintln!("unknown kernel {code}; try `sapp list`");
        std::process::exit(2);
    })
}

/// The workload's official size with any `--size`/`--dims`/`--sweeps`
/// override folded in. `--size N` rescales the dominant extent(s): a 1-D
/// kernel's loop length, a stencil's grid edges, or the SpMV rows *and*
/// cols. `--dims` pins exact extents (2 for a 2-D grid or SpMV rows×cols,
/// 3 for a 3-D grid). `--sweeps N` overrides a stencil's sweep count and
/// is rejected on non-grid workloads; row degrees keep the registry's
/// values.
fn sized(w: &Workload, o: &Opts) -> Size {
    let mut size = w.official;
    if let Some(n) = o.size {
        size = match size {
            Size::N(_) => Size::N(n),
            Size::Grid2 { sweeps, .. } => Size::Grid2 {
                nx: n,
                ny: n,
                sweeps,
            },
            Size::Grid3 { sweeps, .. } => Size::Grid3 {
                nx: n,
                ny: n,
                nz: n,
                sweeps,
            },
            Size::Sparse { deg, .. } => Size::Sparse {
                rows: n,
                cols: n,
                deg,
            },
        };
    }
    if let Some(d) = &o.dims {
        size = match (size, d.as_slice()) {
            (Size::Grid2 { sweeps, .. }, &[nx, ny]) => Size::Grid2 { nx, ny, sweeps },
            (Size::Grid3 { sweeps, .. }, &[nx, ny, nz]) => Size::Grid3 { nx, ny, nz, sweeps },
            (Size::Sparse { deg, .. }, &[rows, cols]) => Size::Sparse { rows, cols, deg },
            _ => {
                eprintln!(
                    "--dims {:?} does not fit {} (size shape {:?})",
                    d, w.code, w.official
                );
                std::process::exit(2);
            }
        };
    }
    if let Some(s) = o.sweeps {
        size = match size {
            Size::Grid2 { nx, ny, .. } => Size::Grid2 { nx, ny, sweeps: s },
            Size::Grid3 { nx, ny, nz, .. } => Size::Grid3 {
                nx,
                ny,
                nz,
                sweeps: s,
            },
            other => {
                eprintln!(
                    "--sweeps only applies to the grid stencils, not {} (size shape {:?})",
                    w.code, other
                );
                std::process::exit(2);
            }
        };
    }
    // Reject undersized overrides here with a friendly message instead of
    // letting the builders' asserts abort with a panic trace.
    let bad = match size {
        Size::N(n) => n == 0,
        Size::Grid2 { nx, ny, .. } => nx < 3 || ny < 3,
        Size::Grid3 { nx, ny, nz, .. } => nx < 3 || ny < 3 || nz < 3,
        Size::Sparse { rows, cols, deg } => rows == 0 || cols == 0 || deg == 0,
    };
    if bad {
        eprintln!(
            "size {} is too small for {} (grids need every extent ≥ 3, \
             sparse/1-D sizes must be non-zero)",
            size.label(),
            w.code
        );
        std::process::exit(2);
    }
    size
}

/// Resolve a kernel code against the sized registry.
fn resolve_kernel(code: &str, o: &Opts) -> Kernel {
    let w = find_workload(code);
    w.build(sized(&w, o))
}

fn config(o: &Opts) -> MachineConfig {
    let elems = if o.no_cache { 0 } else { o.cache };
    let mut cfg = MachineConfig::new(o.pes, o.page).with_cache_elems(elems);
    if let Some(scheme) = o.partition {
        cfg = cfg.with_partition(scheme);
    }
    if let Some(net) = o.network {
        cfg = cfg.with_network(net);
    }
    cfg
}

/// Count one run through the selected counting engine.
fn count_with_engine(k: &Kernel, cfg: &MachineConfig, engine: Engine) -> CountReport {
    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("{} failed: {e}", engine.name());
        std::process::exit(1);
    };
    match engine {
        Engine::Interp => match simulate(&k.program, cfg) {
            Ok(rep) => CountReport::from_sim(&rep),
            Err(e) => fail(&e),
        },
        Engine::Replay => match counts(&k.program, cfg) {
            Ok(rep) => rep,
            Err(e) => fail(&e),
        },
        Engine::Auto => match counts_or_simulate(&k.program, cfg) {
            Ok(rep) => rep,
            Err(e) => fail(&e),
        },
    }
}

/// Print the simulate-style report from the zero-execution estimator.
fn simulate_static(k: &Kernel, cfg: &MachineConfig) {
    let est = sapp::lint::estimate(&k.program, cfg).unwrap_or_else(|e| {
        eprintln!("static failed: {e}");
        std::process::exit(1);
    });
    println!(
        "writes {}  local {}  cached {}  remote {}  → {} remote  [static engine]",
        est.stats.writes(),
        est.stats.local_reads(),
        est.stats.cached_reads(),
        est.stats.remote_reads(),
        fmt_pct(est.stats.remote_read_pct()),
    );
    println!(
        "messages {}  hops n/a  max link load n/a",
        est.network_messages
    );
}

/// Run one kernel on real worker threads and print the simulate-style report.
fn simulate_on_threads(k: &Kernel, cfg: &MachineConfig) {
    let rt = sapp::runtime::RuntimeConfig::from_machine(cfg);
    let rep = sapp::runtime::execute(&k.program, &rt).unwrap_or_else(|e| {
        eprintln!("thread failed: {e}");
        std::process::exit(1);
    });
    println!(
        "writes {}  local {}  cached {}  remote {}  → {} remote  [thread engine]",
        rep.stats.writes(),
        rep.stats.local_reads(),
        rep.stats.cached_reads(),
        rep.stats.remote_reads(),
        fmt_pct(rep.stats.remote_read_pct()),
    );
    println!(
        "messages {} on the wire ({} modeled)  hops {}  max link load {}",
        rep.messages,
        rep.modeled_messages(),
        rep.hops,
        rep.max_link_load
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            let rows: Vec<Vec<String>> = workloads()
                .iter()
                .map(|w| {
                    let k = w.official();
                    vec![
                        k.code.to_string(),
                        k.name.to_string(),
                        k.class_abbrev().to_string(),
                        k.paper_class.unwrap_or("—").to_string(),
                        w.official.label(),
                        k.program.total_elements().to_string(),
                    ]
                })
                .collect();
            println!(
                "{}",
                markdown_table(
                    &["kernel", "name", "class", "paper", "size", "elements"],
                    &rows
                )
            );
        }
        "show" => {
            let o = parse_opts(args.get(2..).unwrap_or(&[]));
            let k = resolve_kernel(
                args.get(1).map(String::as_str).unwrap_or_else(|| usage()),
                &o,
            );
            print!("{}", pretty::program_to_string(&k.program));
        }
        "classify" => {
            let o = parse_opts(args.get(2..).unwrap_or(&[]));
            let k = resolve_kernel(
                args.get(1).map(String::as_str).unwrap_or_else(|| usage()),
                &o,
            );
            let stat = classify_program(&k.program);
            println!("static : {} ({})", stat.class, stat.class.abbrev());
            for nest in &stat.nests {
                println!(
                    "  nest {:<18} {} (revisit: {})",
                    nest.label, nest.class, nest.sweep_revisit
                );
            }
            let dynamic = classify_dynamic(&k.program, 32).expect("sweep");
            println!("measured: {} — curve:", dynamic.class.abbrev());
            for p in dynamic.curve {
                println!(
                    "  {:>3} PEs: {} cached / {} uncached",
                    p.n_pes,
                    fmt_pct(p.cached_pct),
                    fmt_pct(p.uncached_pct)
                );
            }
        }
        "simulate" => {
            let o = parse_opts(args.get(2..).unwrap_or(&[]));
            let k = resolve_kernel(
                args.get(1).map(String::as_str).unwrap_or_else(|| usage()),
                &o,
            );
            let engine = match o.engine {
                EngineSel::Counting(e) => e,
                EngineSel::Static => {
                    simulate_static(&k, &config(&o));
                    return;
                }
                EngineSel::Thread => {
                    simulate_on_threads(&k, &config(&o));
                    return;
                }
            };
            let rep = count_with_engine(&k, &config(&o), engine);
            println!(
                "writes {}  local {}  cached {}  remote {}  → {} remote  [{} engine]",
                rep.stats.writes(),
                rep.stats.local_reads(),
                rep.stats.cached_reads(),
                rep.stats.remote_reads(),
                fmt_pct(rep.remote_pct()),
                rep.engine.name(),
            );
            println!(
                "messages {}  hops {}  max link load {}",
                rep.network_messages, rep.network_hops, rep.max_link_load
            );
        }
        "sweep" => {
            let o = parse_opts(args.get(2..).unwrap_or(&[]));
            let k = resolve_kernel(
                args.get(1).map(String::as_str).unwrap_or_else(|| usage()),
                &o,
            );
            // One plan, all 14 grid points simulated concurrently; the
            // cached/uncached columns are selected by predicate rather
            // than by result position. `--partition`/`--network` pin those
            // axes to a single value across the grid.
            let mut plan = ExperimentPlan::new()
                .page_sizes(&[o.page])
                .cache_flags(&[true, false])
                .pes(&[1, 2, 4, 8, 16, 32, 64]);
            if let Some(scheme) = o.partition {
                plan = plan.partitions(&[scheme]);
            }
            if let Some(net) = o.network {
                plan = plan.networks(&[net]);
            }
            let results = plan
                .run(&k.program, o.engine.oracle().as_ref())
                .expect("sweep");
            if results.is_empty() {
                eprintln!(
                    "note: every grid point was unsupported by the selected engine \
                     (unsupported points are skipped, not errors)"
                );
            }
            let rows: Vec<Vec<String>> = results
                .group_by(|r| r.cfg.n_pes)
                .iter()
                .map(|(n, _)| {
                    // Engines may drop individual grid points as
                    // unsupported (the static estimator has no cache
                    // model); render those as a dash instead of dying.
                    let at = |cached: bool| {
                        results
                            .find(|r| r.cfg.n_pes == *n && r.cfg.cached() == cached)
                            .map(|r| fmt_pct(r.remote_pct))
                            .unwrap_or_else(|| "—".to_string())
                    };
                    vec![n.to_string(), at(true), at(false)]
                })
                .collect();
            print!(
                "{}",
                o.format
                    .render(&["pes", "remote_pct_cache", "remote_pct_no_cache"], &rows)
            );
        }
        "search" => {
            let o = parse_opts(&args[1..]);
            let kernels = match &o.kernel {
                Some(code) => vec![resolve_kernel(code, &o)],
                None => {
                    // A full-suite search runs the official sizes; a size
                    // override needs a kernel to apply to — reject it
                    // instead of silently searching the official sizes.
                    if o.size.is_some() || o.dims.is_some() {
                        eprintln!("--size/--dims need --kernel CODE to apply to");
                        std::process::exit(2);
                    }
                    suite()
                }
            };
            let space = SearchSpace {
                n_pes: o.pes,
                cache_elems: if o.no_cache { 0 } else { o.cache },
                ..SearchSpace::default()
            };
            // The default engine gets the strategy hybrid: the certified
            // zero-execution static estimator for uncached affine points,
            // auto-select replay otherwise. An explicit --engine is
            // honored as-is.
            let oracle: Box<dyn Oracle> = match o.engine {
                EngineSel::Counting(Engine::Auto) => Box::<StrategyOracle>::default(),
                sel => sel.oracle(),
            };
            // One Searcher per invocation: the candidate space is
            // materialized exactly once and the memo cache is shared, so
            // the kernels fan out in parallel over the same space.
            let searcher = Searcher::new(
                &space,
                oracle,
                StrategyParams {
                    strategy: o.strategy,
                    objective: o.objective,
                    seed: o.seed,
                    budget: o.budget,
                },
            )
            .unwrap_or_else(|e| panic!("search: {e}"));
            let reports = par_map(&kernels, |k| {
                // Per-kernel fail-soft, like the sweep: a kernel the
                // engine cannot execute at all drops out with a note
                // instead of aborting the whole table.
                match searcher.search(&k.program) {
                    Ok(rep) => Ok::<_, std::convert::Infallible>(Some(rep)),
                    Err(PlanError::Oracle(OracleError::Unsupported(why))) => {
                        eprintln!("note: skipping {}: {why}", k.code);
                        Ok(None)
                    }
                    Err(e) => panic!("search: {e}"),
                }
            })
            .expect("per-kernel errors are handled in the closure");
            let rows: Vec<Vec<String>> = kernels
                .iter()
                .zip(&reports)
                .filter_map(|(k, rep)| {
                    let rep = rep.as_ref()?;
                    let best = &rep.best;
                    Some(vec![
                        k.code.to_string(),
                        k.class_abbrev().to_string(),
                        best.scheme.name(),
                        best.page_size.to_string(),
                        fmt_pct(best.remote_pct),
                        format!("{:.3}", best.write_balance),
                        best.messages.to_string(),
                        best.evaluated.to_string(),
                        best.pruned.to_string(),
                        rep.oracle_evals.to_string(),
                    ])
                })
                .collect();
            print!(
                "{}",
                o.format.render(
                    &[
                        "kernel",
                        "class",
                        "best_scheme",
                        "best_page_size",
                        "remote_pct",
                        "write_balance",
                        "messages",
                        "evaluated",
                        "pruned",
                        "oracle_evals"
                    ],
                    &rows
                )
            );
            eprintln!(
                "strategy {} over {} candidates: {} oracle evaluations, {} memo hits",
                o.strategy.name(),
                searcher.candidates().len(),
                searcher.cache_misses(),
                searcher.cache_hits(),
            );
        }
        "lint" => {
            // `sapp lint K13` or `sapp lint --all`; the positional kernel
            // is whatever first operand doesn't look like a flag.
            if args[1..].iter().any(|a| a == "--help") {
                lint_help();
            }
            let (code, rest) = match args.get(1).map(String::as_str) {
                Some(a) if !a.starts_with('-') => (Some(a), args.get(2..).unwrap_or(&[])),
                _ => (None, args.get(1..).unwrap_or(&[])),
            };
            let o = parse_opts(rest);
            let kernels: Vec<Kernel> = match (code, o.all) {
                (Some(c), false) => vec![resolve_kernel(c, &o)],
                (None, true) => workloads().iter().map(|w| w.official()).collect(),
                _ => usage(),
            };
            let mut cfg = sapp::lint::LintConfig {
                n_pes: o.pes,
                page_size: o.page,
                ..sapp::lint::LintConfig::default()
            };
            if let Some(scheme) = o.partition {
                cfg.scheme = scheme;
            }
            // Kernels are independent: lint them in parallel (the same
            // scoped-thread fanout the sweep engine uses) and keep the
            // registry order of the results.
            let started = std::time::Instant::now();
            let linted: Vec<Vec<sapp::lint::Diagnostic>> = par_map(&kernels, |k| {
                Ok::<_, std::convert::Infallible>(sapp::lint::lint_program(&k.program, &cfg))
            })
            .expect("lint is infallible");
            let elapsed = started.elapsed();
            // A finding gates the exit status when its severity clears the
            // threshold (error, or warning under --deny-warnings) and its
            // code was not --allow'ed. Allowed findings still print.
            let threshold = if o.deny_warnings {
                sapp::lint::Severity::Warning
            } else {
                sapp::lint::Severity::Error
            };
            let gated = linted
                .iter()
                .flatten()
                .any(|d| d.severity >= threshold && !o.allow.iter().any(|a| a == d.code.as_str()));
            let total: usize = linted.iter().map(Vec::len).sum();
            let wall = format!("{:.1} ms", elapsed.as_secs_f64() * 1e3);
            if o.format == Format::Json {
                let objs: Vec<String> = kernels
                    .iter()
                    .zip(&linted)
                    .map(|(k, diags)| {
                        format!(
                            "{{\"kernel\":\"{}\",\"diagnostics\":{}}}",
                            k.code,
                            sapp::lint::to_json_array(diags)
                        )
                    })
                    .collect();
                println!("[{}]", objs.join(","));
                eprintln!(
                    "{} diagnostic(s) across {} kernel(s) in {}",
                    total,
                    kernels.len(),
                    wall
                );
            } else {
                let mut rows = Vec::new();
                for (k, diags) in kernels.iter().zip(&linted) {
                    for d in diags {
                        rows.push(vec![
                            k.code.to_string(),
                            d.severity.to_string(),
                            d.code.to_string(),
                            d.span.to_string(),
                            d.message.clone(),
                        ]);
                    }
                }
                if rows.is_empty() {
                    println!(
                        "clean: 0 diagnostics across {} kernel(s) in {}",
                        kernels.len(),
                        wall
                    );
                } else {
                    print!(
                        "{}",
                        o.format
                            .render(&["kernel", "severity", "code", "span", "message"], &rows)
                    );
                    println!(
                        "{} diagnostic(s) across {} kernel(s) in {}",
                        total,
                        kernels.len(),
                        wall
                    );
                }
            }
            if gated {
                std::process::exit(1);
            }
        }
        "graph" => {
            let o = parse_opts(args.get(2..).unwrap_or(&[]));
            let k = resolve_kernel(
                args.get(1).map(String::as_str).unwrap_or_else(|| usage()),
                &o,
            );
            let g = sapp::lint::DepGraph::build(&k.program);
            match o.format {
                // DOT is the graph default; `table` only ever comes from
                // the parser default, not an explicit request.
                Format::Dot | Format::Table => print!("{}", g.to_dot()),
                Format::Json => {
                    let summary = sapp::lint::summary(&k.program).ok();
                    println!("{}", g.to_json(&k.program, summary.as_ref()));
                }
                Format::Csv => usage(),
            }
        }
        "timing" => {
            let o = parse_opts(args.get(2..).unwrap_or(&[]));
            let k = resolve_kernel(
                args.get(1).map(String::as_str).unwrap_or_else(|| usage()),
                &o,
            );
            let sp = speedup_sweep(
                &k.program,
                &[1, 2, 4, 8, 16, 32],
                o.page,
                AccessCosts::default(),
            )
            .expect("timing");
            let rows: Vec<Vec<String>> = sp
                .into_iter()
                .map(|(n, s)| vec![n.to_string(), format!("{s:.2}×")])
                .collect();
            println!("{}", markdown_table(&["PEs", "speedup"], &rows));
        }
        _ => usage(),
    }
}
