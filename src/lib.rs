//! # sapp — Single-Assignment Program Partitioning
//!
//! A faithful, production-quality reproduction of
//! *Automatic Data/Program Partitioning Using the Single Assignment
//! Principle* (Lubomir Bic, Mark D. Nagel, John M.A. Roy — UC Irvine ICS
//! TR 89-08, Supercomputing 1989).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`mem`] — single-assignment memory substrate (tagged cells, deferred
//!   reads, concurrent I-structures).
//! * [`ir`] — the loop-nest IR in which workloads are expressed, the
//!   sequential reference interpreter, the static access-pattern classifier
//!   and the automatic single-assignment conversion pass.
//! * [`machine`] — the simulated loosely-coupled MIMD machine: page-granular
//!   modulo/block data partitioning, per-PE LRU caches, network models, and
//!   the host-processor re-initialization protocol.
//! * [`loops`] — the Livermore Loops suite used by the paper's evaluation.
//! * [`lint`] — the static analysis pass: write-once verification via
//!   GCD/Banerjee-style conflict tests, partition-legality and progress
//!   checking, and a certified zero-execution communication estimator.
//! * [`core`] — owner-computes distributed execution, access counting,
//!   the event-driven timing pass, composable experiment plans with
//!   pluggable evaluation oracles, automatic scheme search, and report
//!   tables.
//! * [`runtime`] — a real-thread execution engine (one thread per PE,
//!   channels as the interconnect) demonstrating that single assignment
//!   alone synchronizes the computation; plugs into experiment plans as
//!   `ThreadOracle`.
//!
//! ## Quickstart
//!
//! ```
//! use sapp::loops::k01_hydro;
//! use sapp::machine::MachineConfig;
//! use sapp::core::exec::simulate;
//!
//! let kernel = k01_hydro::build(1001);
//! let cfg = MachineConfig::new(8, 32); // 8 PEs, 32-element pages, 256-elem cache
//! let report = simulate(&kernel.program, &cfg).unwrap();
//! println!("remote reads: {:.2}%", report.stats.remote_read_pct());
//! assert!(report.stats.remote_read_pct() < 10.0); // SD class, paper Fig. 1
//! ```
//!
//! ## Experiment plans
//!
//! Sweeps are composed from typed axes and evaluated through an oracle
//! (the counting simulator, the timing replay, or real threads):
//!
//! ```
//! use sapp::core::plan::ExperimentPlan;
//! use sapp::core::CountingOracle;
//!
//! let kernel = sapp::loops::k12_first_diff::build(1001);
//! let results = ExperimentPlan::new()
//!     .page_sizes(&[32, 64])
//!     .cache_flags(&[true, false])
//!     .pes(&[1, 2, 4, 8])
//!     .run(&kernel.program, &CountingOracle)
//!     .unwrap();
//! let pt = results
//!     .find(|r| r.cfg.n_pes == 8 && r.cfg.page_size == 32 && r.cfg.cached())
//!     .unwrap();
//! assert!(pt.remote_pct < 10.0);
//! ```

pub use sa_core as core;
pub use sa_ir as ir;
pub use sa_lint as lint;
pub use sa_loops as loops;
pub use sa_machine as machine;
pub use sa_mem as mem;
pub use sa_runtime as runtime;
