//! The plan API's contract: grid enumeration is exact and order-robust,
//! degenerate plans fail with typed errors, and the five legacy sweep
//! drivers are provably thin wrappers — their outputs equal both a
//! hand-rolled sequential loop over the raw simulator and a plan-built
//! grid, point for point, on K12 (First Difference).

use sapp::core::experiment::{cache_sweep, partition_sweep, pe_sweep, policy_sweep, speedup_sweep};
use sapp::core::plan::{Axis, ExperimentPlan, PlanError, RunConfig};
use sapp::core::search::{search, SearchSpace};
use sapp::core::{estimate_timing, simulate, CountingOracle};
use sapp::loops::suite;
use sapp::machine::{AccessCosts, CachePolicy, ConfigError, MachineConfig, PartitionScheme};

fn k12() -> sapp::ir::Program {
    suite()
        .into_iter()
        .find(|k| k.code == "K12")
        .expect("K12 in suite")
        .program
}

#[test]
fn grid_enumeration_is_lazy_and_exact() {
    let plan = ExperimentPlan::new()
        .page_sizes(&[16, 32, 64])
        .cache_flags(&[true, false])
        .pes(&[1, 2, 4, 8]);
    assert_eq!(plan.len(), 3 * 2 * 4);
    // The lazy iterator and random access agree.
    for (i, cfg) in plan.configs().enumerate() {
        assert_eq!(cfg, plan.config_at(i));
    }
    // Mixed-radix order: first axis outermost.
    let last = plan.config_at(plan.len() - 1);
    assert_eq!((last.page_size, last.cached(), last.n_pes), (64, false, 8));
}

#[test]
fn axis_order_invariance_of_measured_sets() {
    // Two plans over the same axes in different insertion order must
    // measure the same set of points with identical results — a figure
    // that selects by predicate can't tell them apart.
    let p = k12();
    let a = ExperimentPlan::new()
        .page_sizes(&[32, 64])
        .cache_flags(&[true, false])
        .pes(&[2, 4])
        .run(&p, &CountingOracle)
        .unwrap();
    let b = ExperimentPlan::new()
        .pes(&[2, 4])
        .cache_flags(&[false, true])
        .page_sizes(&[64, 32])
        .run(&p, &CountingOracle)
        .unwrap();
    assert_eq!(a.len(), b.len());
    for r in a.records() {
        let twin = b
            .find(|s| s.cfg == r.cfg)
            .unwrap_or_else(|| panic!("point {:?} missing after axis permutation", r.cfg));
        assert_eq!(r, twin, "same config must measure identically");
    }
    // And the group-by pivot yields the same series content either way.
    let series_a = a.series(
        |r| format!("ps{} c{}", r.cfg.page_size, r.cfg.cached()),
        |r| r.cfg.n_pes as f64,
        |r| r.remote_pct,
    );
    for s in &series_a {
        let mut points_b: Vec<(f64, f64)> = b
            .filter(|r| format!("ps{} c{}", r.cfg.page_size, r.cfg.cached()) == s.label)
            .records()
            .iter()
            .map(|r| (r.cfg.n_pes as f64, r.remote_pct))
            .collect();
        points_b.sort_by(|x, y| x.0.total_cmp(&y.0));
        let mut points_a = s.points.clone();
        points_a.sort_by(|x, y| x.0.total_cmp(&y.0));
        assert_eq!(points_a, points_b);
    }
}

#[test]
fn empty_axis_is_a_config_error() {
    let p = k12();
    let err = ExperimentPlan::new()
        .pes(&[])
        .run(&p, &CountingOracle)
        .unwrap_err();
    assert!(matches!(
        err,
        PlanError::Config(ConfigError::EmptyAxis { axis: "pes" })
    ));
    let err = ExperimentPlan::new()
        .pes(&[2])
        .axis(Axis::Cache(vec![]))
        .run(&p, &CountingOracle)
        .unwrap_err();
    assert!(matches!(
        err,
        PlanError::Config(ConfigError::EmptyAxis { axis: "cache" })
    ));
}

#[test]
fn duplicate_axis_is_a_config_error() {
    let p = k12();
    let err = ExperimentPlan::new()
        .pes(&[2])
        .pes(&[4])
        .run(&p, &CountingOracle)
        .unwrap_err();
    assert!(matches!(
        err,
        PlanError::Config(ConfigError::DuplicateAxis { axis: "pes" })
    ));
}

#[test]
fn legacy_pe_sweep_equals_plan_grid_and_sequential_loop() {
    let p = k12();
    let (pes, page_sizes, cache_options) = (
        &[1usize, 2, 4, 8][..],
        &[32usize, 64][..],
        &[true, false][..],
    );

    // The wrapper under test.
    let wrapper = pe_sweep(&p, pes, page_sizes, cache_options).unwrap();

    // Independently: the plan-built grid.
    let plan = ExperimentPlan::new()
        .page_sizes(page_sizes)
        .cache_flags(cache_options)
        .pes(pes)
        .run(&p, &CountingOracle)
        .unwrap();
    assert_eq!(wrapper.len(), plan.len());
    for (w, r) in wrapper.iter().zip(plan.records()) {
        assert_eq!(
            (w.n_pes, w.page_size, w.cached),
            (r.cfg.n_pes, r.cfg.page_size, r.cfg.cached())
        );
        assert_eq!(w.remote_pct, r.remote_pct);
        assert_eq!(w.remote_reads, r.remote_reads);
        assert_eq!(w.total_reads, r.total_reads);
        assert_eq!(w.messages, r.messages);
    }

    // Independently: the original sequential triple loop over the raw
    // simulator, in the drivers' documented order.
    let mut i = 0;
    for &ps in page_sizes {
        for &cached in cache_options {
            for &n in pes {
                let cfg = MachineConfig::new(n, ps).with_cache_elems(if cached { 256 } else { 0 });
                let rep = simulate(&p, &cfg).unwrap();
                let w = &wrapper[i];
                assert_eq!((w.n_pes, w.page_size, w.cached), (n, ps, cached));
                assert_eq!(w.remote_pct, rep.remote_pct());
                assert_eq!(w.remote_reads, rep.stats.remote_reads());
                assert_eq!(w.messages, rep.network_messages);
                i += 1;
            }
        }
    }
    assert_eq!(i, wrapper.len());
}

#[test]
fn legacy_cache_and_partition_and_policy_sweeps_equal_sequential_loops() {
    let p = k12();

    let sizes = [0usize, 128, 256, 1024];
    let cs = cache_sweep(&p, 8, 32, &sizes).unwrap();
    for (&elems, (got_elems, got_pct)) in sizes.iter().zip(&cs) {
        let rep = simulate(&p, &MachineConfig::new(8, 32).with_cache_elems(elems)).unwrap();
        assert_eq!(*got_elems, elems);
        assert_eq!(*got_pct, rep.remote_pct());
    }

    let schemes = [
        PartitionScheme::Modulo,
        PartitionScheme::Block,
        PartitionScheme::BlockCyclic { block_pages: 2 },
    ];
    let ps = partition_sweep(&p, 8, 32, &schemes).unwrap();
    for (&scheme, (name, pct)) in schemes.iter().zip(&ps) {
        let rep = simulate(&p, &MachineConfig::new(8, 32).with_partition(scheme)).unwrap();
        assert_eq!(*name, scheme.name());
        assert_eq!(*pct, rep.remote_pct());
    }

    let policies = [
        CachePolicy::Lru,
        CachePolicy::Fifo,
        CachePolicy::Random { seed: 7 },
    ];
    let pol = policy_sweep(&p, 8, 32, &policies).unwrap();
    for (&policy, (name, pct)) in policies.iter().zip(&pol) {
        let rep = simulate(&p, &MachineConfig::new(8, 32).with_cache_policy(policy)).unwrap();
        let want = match policy {
            CachePolicy::Lru => "lru",
            CachePolicy::Fifo => "fifo",
            CachePolicy::Random { .. } => "random",
        };
        assert_eq!(name, want);
        assert_eq!(*pct, rep.remote_pct());
    }
}

#[test]
fn legacy_speedup_sweep_equals_sequential_loop() {
    let p = k12();
    let pes = [1usize, 2, 4, 8];
    let got = speedup_sweep(&p, &pes, 32, AccessCosts::default()).unwrap();
    let base = estimate_timing(&p, &MachineConfig::new(1, 32)).unwrap();
    for (&n, (got_n, got_speedup)) in pes.iter().zip(&got) {
        let t = estimate_timing(&p, &MachineConfig::new(n, 32)).unwrap();
        assert_eq!(*got_n, n);
        assert_eq!(*got_speedup, t.speedup_over(&base));
    }
}

#[test]
fn search_finds_k12_best_scheme_and_page_size() {
    let p = k12();
    let space = SearchSpace::default();
    let best = search(&p, &space, &CountingOracle).unwrap();
    // Every candidate is either measured or statically pruned.
    assert_eq!(
        best.evaluated + best.pruned,
        space.schemes.len() * space.page_sizes.len()
    );
    assert!(space.schemes.contains(&best.scheme));
    assert!(space.page_sizes.contains(&best.page_size));
    // K12 is Skewed (X[k] = Y[k+1] - Y[k]): only page-boundary crossings
    // are remote, so the winner must beat the paper's reference point
    // (modulo, ps 32) or match it.
    let reference = simulate(&p, &MachineConfig::new(16, 32))
        .unwrap()
        .remote_pct();
    assert!(best.remote_pct <= reference);
    // And the winner's measurement is reproducible.
    let re = simulate(
        &p,
        &MachineConfig::new(16, best.page_size).with_partition(best.scheme),
    )
    .unwrap();
    assert_eq!(best.remote_pct, re.remote_pct());
    assert_eq!(best.messages, re.network_messages);
}

#[test]
fn base_config_flows_into_every_grid_point() {
    let p = k12();
    let results = ExperimentPlan::new()
        .base(RunConfig {
            n_pes: 4,
            cache_elems: 512,
            ..RunConfig::default()
        })
        .page_sizes(&[16, 32])
        .run(&p, &CountingOracle)
        .unwrap();
    for r in results.records() {
        assert_eq!(r.cfg.n_pes, 4);
        assert_eq!(r.cfg.cache_elems, 512);
    }
}
