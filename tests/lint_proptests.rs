//! Property-based certification of the `sa-lint` passes:
//!
//! * the zero-execution communication estimator agrees with the counting
//!   oracle — per-PE counters and message totals — on randomly generated
//!   affine nests × partition schemes × page sizes × PE counts;
//! * the write-once verifier accepts every generated program the
//!   interpreter accepts, and flags a seeded double-write mutant of the
//!   same program with `SA001` (which the interpreter also traps, so the
//!   static and dynamic verdicts always agree).

use proptest::prelude::*;

use sapp::core::{simulate, CountingOracle, Oracle, RunConfig, StaticOracle};
use sapp::ir::index::iv;
use sapp::ir::{InitPattern, Program, ProgramBuilder, ReduceOp};
use sapp::lint::{self, Code, LintConfig, Severity};
use sapp::machine::{MachineConfig, PartitionScheme};

const MAX_COEFF: i64 = 3;
const OFF_PAD: i64 = 10;

/// One randomly generated affine program: a strided write nest over reads
/// with random (coefficient, offset) subscripts, an optional anchorless
/// reduction nest, and an optional chained nest re-reading the outputs.
#[derive(Debug, Clone)]
struct Spec {
    /// `[n]` for a 1-level nest, `[outer, inner]` for a 2-level one.
    trips: Vec<usize>,
    /// `(coeff, offset)` per read of the shared input, innermost-affine.
    reads: Vec<(i64, i64)>,
    /// Stride of the write subscript on the innermost variable.
    stride: i64,
    /// Append an anchorless sum-reduction nest.
    reduce: bool,
    /// Append a nest re-reading the written array at matched subscripts.
    chain: bool,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        prop_oneof![
            (2usize..48).prop_map(|n| vec![n]),
            ((2usize..10), (2usize..16)).prop_map(|(a, b)| vec![a, b]),
        ],
        proptest::collection::vec((1i64..=MAX_COEFF, -OFF_PAD..=OFF_PAD), 1..4),
        1i64..4,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(trips, reads, stride, reduce, chain)| Spec {
            trips,
            reads,
            stride,
            reduce,
            chain,
        })
}

fn bounds(spec: &Spec) -> Vec<(&'static str, i64, i64)> {
    match spec.trips.as_slice() {
        [n] => vec![("k", 0, *n as i64 - 1)],
        [o, i] => vec![("i", 0, *o as i64 - 1), ("j", 0, *i as i64 - 1)],
        _ => unreachable!(),
    }
}

/// Materialize a spec. The clean build is valid single-assignment by
/// construction (strided injective writes, padded reads); `dup` appends a
/// one-iteration nest re-assigning `X[0…]`, which the write nest always
/// also assigns (innermost 0 → address 0) — a guaranteed double write.
fn build(spec: &Spec, dup: bool) -> Program {
    let mut b = ProgramBuilder::new("gen");
    let depth = spec.trips.len();
    let inner = *spec.trips.last().unwrap();
    let outer = if depth == 2 { spec.trips[0] } else { 1 };

    let read_len = (MAX_COEFF * (inner as i64 - 1) + 2 * OFF_PAD + 1) as usize;
    let y = b.input("Y", &[read_len], InitPattern::Wavy);
    let row = (spec.stride * (inner as i64 - 1) + 1) as usize;
    let dims: Vec<usize> = if depth == 2 {
        vec![outer, row]
    } else {
        vec![row]
    };
    let x = b.output("X", &dims);

    b.nest("write", &bounds(spec), |nb| {
        let mut value: Option<sapp::ir::Expr> = None;
        for &(c, off) in &spec.reads {
            let read = nb.read(y, [iv(depth - 1).scale(c).plus(off + OFF_PAD)]);
            value = Some(match value {
                None => read,
                Some(v) => v + read,
            });
        }
        let value = value.expect("at least one read");
        let idx = iv(depth - 1).scale(spec.stride);
        if depth == 2 {
            nb.assign(x, [iv(0), idx], value);
        } else {
            nb.assign(x, [idx], value);
        }
    });

    if spec.reduce {
        let s = b.scalar("s");
        b.nest("reduce", &bounds(spec), |nb| {
            let v = nb.read(y, [iv(depth - 1)]);
            nb.reduce(s, ReduceOp::Sum, v);
        });
    }

    if spec.chain {
        let z = b.output("Z", &dims);
        b.nest("chain", &bounds(spec), |nb| {
            let idx = iv(depth - 1).scale(spec.stride);
            if depth == 2 {
                let v = nb.read(x, [iv(0), idx.clone()]);
                nb.assign(z, [iv(0), idx], v);
            } else {
                let v = nb.read(x, [idx.clone()]);
                nb.assign(z, [idx], v);
            }
        });
    }

    if dup {
        b.nest("dup", &[("d", 0, 0)], |nb| {
            let zero = iv(0).scale(0);
            if depth == 2 {
                nb.assign(x, [zero.clone(), zero], sapp::ir::Expr::Const(1.0));
            } else {
                nb.assign(x, [zero], sapp::ir::Expr::Const(1.0));
            }
        });
    }
    b.finish()
}

fn run_config_strategy() -> impl Strategy<Value = RunConfig> {
    (
        1usize..17,
        proptest::sample::select(vec![4usize, 8, 32, 64]),
        prop_oneof![
            Just(PartitionScheme::Modulo),
            Just(PartitionScheme::Block),
            (1usize..4).prop_map(|b| PartitionScheme::BlockCyclic { block_pages: b }),
        ],
    )
        .prop_map(|(n_pes, page_size, partition)| RunConfig {
            n_pes,
            page_size,
            cache_elems: 0, // the estimator has no cache model by design
            partition,
            ..RunConfig::default()
        })
}

proptest! {
    /// Estimator totals ≡ counting oracle on random nests × schemes ×
    /// page sizes — the closed forms, not just the CLI paths.
    #[test]
    fn estimator_matches_counting_oracle(
        spec in spec_strategy(),
        cfg in run_config_strategy(),
    ) {
        let program = build(&spec, false);
        let est = lint::estimate(&program, &cfg.machine())
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let sim = simulate(&program, &cfg.machine())
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&est.stats, &sim.stats, "spec {:?} cfg {:?}", &spec, &cfg);
        prop_assert_eq!(est.network_messages, sim.network_messages);

        // And through the oracle adapters, field for field.
        let s = StaticOracle.measure(&program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let c = CountingOracle.measure(&program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(s.writes, c.writes);
        prop_assert_eq!(s.local_reads, c.local_reads);
        prop_assert_eq!(s.remote_reads, c.remote_reads);
        prop_assert_eq!(s.total_reads, c.total_reads);
        prop_assert_eq!(s.messages, c.messages);
        prop_assert_eq!(s.remote_pct, c.remote_pct);
        prop_assert_eq!(s.write_balance, c.write_balance);
    }

    /// The verifier accepts what the interpreter accepts, and both reject
    /// the seeded double-write mutant of the same program.
    #[test]
    fn verifier_agrees_with_the_interpreter(spec in spec_strategy()) {
        let cfg = MachineConfig::new(4, 32).with_cache_elems(0);

        let clean = build(&spec, false);
        simulate(&clean, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let diags = lint::lint_program(&clean, &LintConfig::default());
        prop_assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "verifier rejected an interpreter-accepted program: {:?}",
            diags
        );

        let mutant = build(&spec, true);
        prop_assert!(
            simulate(&mutant, &cfg).is_err(),
            "interpreter accepted the double-write mutant"
        );
        let report = lint::check_write_once(&mutant);
        prop_assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::Sa001DoubleWrite),
            "mutant not flagged with SA001: {:?}",
            report.diagnostics
        );
    }
}
