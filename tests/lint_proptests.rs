//! Property-based certification of the `sa-lint` passes:
//!
//! * the zero-execution communication estimator agrees with the counting
//!   oracle — per-PE counters and message totals — on randomly generated
//!   affine nests × partition schemes × page sizes × PE counts;
//! * the write-once verifier accepts every generated program the
//!   interpreter accepts, and flags a seeded double-write mutant of the
//!   same program with `SA001` (which the interpreter also traps, so the
//!   static and dynamic verdicts always agree);
//! * the generation-level dependence graph is *sound*: every
//!   read-after-write pair a traced sequential execution realizes is
//!   covered by a static edge (`DepGraph::covers_wait`);
//! * the deadlock pass proves every generated program (producers always
//!   precede consumers) free of wait-graph cycles at random machine
//!   shapes.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use sapp::core::{simulate, CountingOracle, Oracle, RunConfig, StaticOracle};
use sapp::ir::index::iv;
use sapp::ir::interp::{EvalCtx, Memory};
use sapp::ir::{ArrayId, InitPattern, IrError, Phase, Program, ProgramBuilder, ReduceOp, Stmt};
use sapp::lint::{self, Code, DepGraph, LintConfig, Severity};
use sapp::machine::{MachineConfig, PartitionScheme};

const MAX_COEFF: i64 = 3;
const OFF_PAD: i64 = 10;

/// One randomly generated affine program: a strided write nest over reads
/// with random (coefficient, offset) subscripts, an optional anchorless
/// reduction nest, and an optional chained nest re-reading the outputs.
#[derive(Debug, Clone)]
struct Spec {
    /// `[n]` for a 1-level nest, `[outer, inner]` for a 2-level one.
    trips: Vec<usize>,
    /// `(coeff, offset)` per read of the shared input, innermost-affine.
    reads: Vec<(i64, i64)>,
    /// Stride of the write subscript on the innermost variable.
    stride: i64,
    /// Append an anchorless sum-reduction nest.
    reduce: bool,
    /// Append a nest re-reading the written array at matched subscripts.
    chain: bool,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        prop_oneof![
            (2usize..48).prop_map(|n| vec![n]),
            ((2usize..10), (2usize..16)).prop_map(|(a, b)| vec![a, b]),
        ],
        proptest::collection::vec((1i64..=MAX_COEFF, -OFF_PAD..=OFF_PAD), 1..4),
        1i64..4,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(trips, reads, stride, reduce, chain)| Spec {
            trips,
            reads,
            stride,
            reduce,
            chain,
        })
}

fn bounds(spec: &Spec) -> Vec<(&'static str, i64, i64)> {
    match spec.trips.as_slice() {
        [n] => vec![("k", 0, *n as i64 - 1)],
        [o, i] => vec![("i", 0, *o as i64 - 1), ("j", 0, *i as i64 - 1)],
        _ => unreachable!(),
    }
}

/// Materialize a spec. The clean build is valid single-assignment by
/// construction (strided injective writes, padded reads); `dup` appends a
/// one-iteration nest re-assigning `X[0…]`, which the write nest always
/// also assigns (innermost 0 → address 0) — a guaranteed double write.
fn build(spec: &Spec, dup: bool) -> Program {
    let mut b = ProgramBuilder::new("gen");
    let depth = spec.trips.len();
    let inner = *spec.trips.last().unwrap();
    let outer = if depth == 2 { spec.trips[0] } else { 1 };

    let read_len = (MAX_COEFF * (inner as i64 - 1) + 2 * OFF_PAD + 1) as usize;
    let y = b.input("Y", &[read_len], InitPattern::Wavy);
    let row = (spec.stride * (inner as i64 - 1) + 1) as usize;
    let dims: Vec<usize> = if depth == 2 {
        vec![outer, row]
    } else {
        vec![row]
    };
    let x = b.output("X", &dims);

    b.nest("write", &bounds(spec), |nb| {
        let mut value: Option<sapp::ir::Expr> = None;
        for &(c, off) in &spec.reads {
            let read = nb.read(y, [iv(depth - 1).scale(c).plus(off + OFF_PAD)]);
            value = Some(match value {
                None => read,
                Some(v) => v + read,
            });
        }
        let value = value.expect("at least one read");
        let idx = iv(depth - 1).scale(spec.stride);
        if depth == 2 {
            nb.assign(x, [iv(0), idx], value);
        } else {
            nb.assign(x, [idx], value);
        }
    });

    if spec.reduce {
        let s = b.scalar("s");
        b.nest("reduce", &bounds(spec), |nb| {
            let v = nb.read(y, [iv(depth - 1)]);
            nb.reduce(s, ReduceOp::Sum, v);
        });
    }

    if spec.chain {
        let z = b.output("Z", &dims);
        b.nest("chain", &bounds(spec), |nb| {
            let idx = iv(depth - 1).scale(spec.stride);
            if depth == 2 {
                let v = nb.read(x, [iv(0), idx.clone()]);
                nb.assign(z, [iv(0), idx], v);
            } else {
                let v = nb.read(x, [idx.clone()]);
                nb.assign(z, [idx], v);
            }
        });
    }

    if dup {
        b.nest("dup", &[("d", 0, 0)], |nb| {
            let zero = iv(0).scale(0);
            if depth == 2 {
                nb.assign(x, [zero.clone(), zero], sapp::ir::Expr::Const(1.0));
            } else {
                nb.assign(x, [zero], sapp::ir::Expr::Const(1.0));
            }
        });
    }
    b.finish()
}

fn run_config_strategy() -> impl Strategy<Value = RunConfig> {
    (
        1usize..17,
        proptest::sample::select(vec![4usize, 8, 32, 64]),
        prop_oneof![
            Just(PartitionScheme::Modulo),
            Just(PartitionScheme::Block),
            (1usize..4).prop_map(|b| PartitionScheme::BlockCyclic { block_pages: b }),
        ],
    )
        .prop_map(|(n_pes, page_size, partition)| RunConfig {
            n_pes,
            page_size,
            cache_elems: 0, // the estimator has no cache model by design
            partition,
            ..RunConfig::default()
        })
}

/// Dense tracing memory for a sequential reference walk: cell values plus
/// a per-array set of statement-written addresses, so every load of a
/// statement-produced cell records a realized read-after-write pair at the
/// reader's statement site.
struct TraceMem {
    vals: Vec<Vec<Option<f64>>>,
    written: Vec<HashSet<usize>>,
    gen: Vec<usize>,
    cur: (usize, usize),
    /// `(array, generation, reader phase, reader stmt)` observations.
    raws: HashSet<(usize, usize, usize, usize)>,
}

impl TraceMem {
    fn new(program: &Program) -> Self {
        let vals = program
            .arrays
            .iter()
            .map(|d| {
                let init = d.init.materialize(d.len());
                (0..d.len()).map(|i| init.get(i).copied()).collect()
            })
            .collect();
        TraceMem {
            vals,
            written: vec![HashSet::new(); program.arrays.len()],
            gen: vec![0; program.arrays.len()],
            cur: (0, 0),
            raws: HashSet::new(),
        }
    }
}

impl Memory for TraceMem {
    fn load(&mut self, array: ArrayId, addr: usize) -> Result<f64, IrError> {
        let a = array.0;
        if self.written[a].contains(&addr) {
            self.raws.insert((a, self.gen[a], self.cur.0, self.cur.1));
        }
        self.vals[a][addr].ok_or(IrError::ReadUndefined {
            array: format!("array#{a}"),
            addr,
        })
    }
}

/// Sequentially execute `program`, returning every realized RAW pair —
/// the ground truth the static dependence graph must cover.
fn observed_raws(program: &Program) -> HashSet<(usize, usize, usize, usize)> {
    let mut ctx = EvalCtx::new(program);
    let mut mem = TraceMem::new(program);
    for (pi, phase) in program.phases.iter().enumerate() {
        match phase {
            Phase::Reinit(id) => {
                mem.vals[id.0] = vec![None; program.array(*id).len()];
                mem.written[id.0].clear();
                mem.gen[id.0] += 1;
            }
            Phase::Loop(nest) => {
                let mut partial: HashMap<usize, f64> = HashMap::new();
                nest.for_each_iteration(|ivs| {
                    for (si, stmt) in nest.body.iter().enumerate() {
                        mem.cur = (pi, si);
                        match stmt {
                            Stmt::Assign { target, value } => {
                                let v = ctx.eval(value, ivs, &mut mem).expect("clean program");
                                let addr = ctx
                                    .resolve_addr(target, ivs, &mut mem)
                                    .expect("clean program");
                                mem.vals[target.array.0][addr] = Some(v);
                                mem.written[target.array.0].insert(addr);
                            }
                            Stmt::Reduce { target, op, value } => {
                                let v = ctx.eval(value, ivs, &mut mem).expect("clean program");
                                let acc = partial.entry(target.0).or_insert_with(|| op.identity());
                                *acc = op.combine(*acc, v);
                            }
                        }
                    }
                });
                for (sid, v) in partial {
                    ctx.scalars[sid] = v;
                }
            }
        }
    }
    mem.raws
}

proptest! {
    /// Estimator totals ≡ counting oracle on random nests × schemes ×
    /// page sizes — the closed forms, not just the CLI paths.
    #[test]
    fn estimator_matches_counting_oracle(
        spec in spec_strategy(),
        cfg in run_config_strategy(),
    ) {
        let program = build(&spec, false);
        let est = lint::estimate(&program, &cfg.machine())
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let sim = simulate(&program, &cfg.machine())
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&est.stats, &sim.stats, "spec {:?} cfg {:?}", &spec, &cfg);
        prop_assert_eq!(est.network_messages, sim.network_messages);

        // And through the oracle adapters, field for field.
        let s = StaticOracle.measure(&program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let c = CountingOracle.measure(&program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(s.writes, c.writes);
        prop_assert_eq!(s.local_reads, c.local_reads);
        prop_assert_eq!(s.remote_reads, c.remote_reads);
        prop_assert_eq!(s.total_reads, c.total_reads);
        prop_assert_eq!(s.messages, c.messages);
        prop_assert_eq!(s.remote_pct, c.remote_pct);
        prop_assert_eq!(s.write_balance, c.write_balance);
    }

    /// The verifier accepts what the interpreter accepts, and both reject
    /// the seeded double-write mutant of the same program.
    #[test]
    fn verifier_agrees_with_the_interpreter(spec in spec_strategy()) {
        let cfg = MachineConfig::new(4, 32).with_cache_elems(0);

        let clean = build(&spec, false);
        simulate(&clean, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let diags = lint::lint_program(&clean, &LintConfig::default());
        prop_assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "verifier rejected an interpreter-accepted program: {:?}",
            diags
        );

        let mutant = build(&spec, true);
        prop_assert!(
            simulate(&mutant, &cfg).is_err(),
            "interpreter accepted the double-write mutant"
        );
        let report = lint::check_write_once(&mutant);
        prop_assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::Sa001DoubleWrite),
            "mutant not flagged with SA001: {:?}",
            report.diagnostics
        );
    }

    /// Soundness of the generation-level dependence graph: every RAW pair
    /// a traced sequential execution realizes is covered by a static edge.
    #[test]
    fn observed_raw_pairs_are_covered_by_the_depgraph(spec in spec_strategy()) {
        let program = build(&spec, false);
        let g = DepGraph::build(&program);
        let raws = observed_raws(&program);
        if spec.chain {
            prop_assert!(!raws.is_empty(), "chained spec realized no RAW pair");
        }
        for (array, generation, phase, stmt) in raws {
            prop_assert!(
                g.covers_wait(phase, stmt, ArrayId(array), generation),
                "RAW at phase {} stmt {} on array {} gen {} has no covering \
                 static edge (spec {:?})",
                phase, stmt, array, generation, &spec
            );
        }
    }

    /// Producers always precede consumers in the generated programs, so
    /// the wait graph is acyclic at *any* machine shape — and the deadlock
    /// pass must prove it (affine instances: a full proof, no SA008 of any
    /// severity).
    #[test]
    fn generated_programs_prove_deadlock_free(
        spec in spec_strategy(),
        cfg in run_config_strategy(),
    ) {
        let program = build(&spec, false);
        let lc = LintConfig {
            n_pes: cfg.n_pes,
            page_size: cfg.page_size,
            scheme: cfg.partition,
        };
        let diags = lint::check_deadlock(&program, &lc);
        prop_assert!(
            diags.is_empty(),
            "expected a clean deadlock-freedom proof for spec {:?} at {:?}, got {:?}",
            &spec, &lc, &diags
        );
    }
}
