//! Certification of the `sa-lint` static passes against the executing
//! engines:
//!
//! 1. **Estimator ≡ simulator** — on every affine registry workload the
//!    zero-execution communication estimate is bit-identical (per-PE
//!    counters, message totals) to the counting interpreter, across
//!    partition schemes × page sizes × PE counts. Workloads with runtime
//!    indirection are rejected with a typed error, mirroring
//!    `StaticOracle`'s `Unsupported`.
//! 2. **Verifier soundness on the registry** — `sapp lint` reports zero
//!    error-severity diagnostics on the stock registry (which every
//!    executor accepts), and flags seeded double-write and
//!    dangling-deferral mutants that the executors trap at run time.

use sapp::core::{simulate, StaticOracle};
use sapp::core::{Oracle, OracleError, RunConfig};
use sapp::ir::index::iv;
use sapp::ir::{InitPattern, ProgramBuilder};
use sapp::lint::{self, Code, EstimateError, LintConfig, Severity};
use sapp::loops::reduced_suite;
use sapp::machine::{MachineConfig, PartitionScheme};

/// The certification grid: schemes × page sizes × PE counts, no cache
/// (the estimator has no cache model by design).
fn grid() -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for scheme in [
        PartitionScheme::Modulo,
        PartitionScheme::Block,
        PartitionScheme::BlockCyclic { block_pages: 2 },
    ] {
        for &page in &[8usize, 32, 256] {
            for &pes in &[1usize, 4, 16] {
                out.push(
                    MachineConfig::new(pes, page)
                        .with_cache_elems(0)
                        .with_partition(scheme),
                );
            }
        }
    }
    out
}

#[test]
fn estimator_is_bit_identical_to_the_simulator_on_the_registry() {
    let mut affine = 0usize;
    let mut indirect = 0usize;
    for k in reduced_suite() {
        for cfg in grid() {
            match lint::estimate(&k.program, &cfg) {
                Err(EstimateError::Indirect { .. }) => {
                    indirect += 1;
                    // The rejection must be stable: the oracle adapter
                    // surfaces the same program as Unsupported.
                    let rc = RunConfig {
                        n_pes: cfg.n_pes,
                        cache_elems: 0,
                        ..RunConfig::default()
                    };
                    assert!(
                        matches!(
                            StaticOracle.measure(&k.program, &rc),
                            Err(OracleError::Unsupported(_))
                        ),
                        "{}: estimate rejected but StaticOracle accepted",
                        k.code
                    );
                    break; // indirection is config-independent
                }
                Err(e) => panic!("{} @ {cfg:?}: unexpected estimator error {e}", k.code),
                Ok(est) => {
                    affine += 1;
                    let sim = simulate(&k.program, &cfg)
                        .unwrap_or_else(|e| panic!("{}: simulator failed: {e}", k.code));
                    // `Stats` equality covers every per-PE counter.
                    assert_eq!(
                        est.stats, sim.stats,
                        "{} @ {cfg:?}: per-PE access counts diverge",
                        k.code
                    );
                    assert_eq!(
                        est.network_messages, sim.network_messages,
                        "{} @ {cfg:?}: network message totals diverge",
                        k.code
                    );
                }
            }
        }
    }
    // The registry must exercise both paths, or this test is vacuous.
    assert!(affine > 0, "no affine workload was certified");
    assert!(indirect > 0, "no indirect workload exercised the rejection");
}

#[test]
fn stock_registry_lints_clean_of_errors() {
    for k in reduced_suite() {
        let diags = lint::lint_program(&k.program, &LintConfig::default());
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{}: stock kernel has error diagnostics: {errors:?}",
            k.code
        );
    }
}

#[test]
fn seeded_double_write_is_rejected_with_sa001() {
    // K1-shaped kernel with a second statement recomputing the same cell —
    // the classic violation the paper's single-assignment rule forbids.
    let n = 64;
    let mut b = ProgramBuilder::new("mutant-double");
    let y = b.input("Y", &[n], InitPattern::Wavy);
    let x = b.output("X", &[n]);
    b.nest("dup", &[("k", 0, n as i64 - 1)], |nb| {
        let rhs = nb.read(y, [iv(0)]);
        nb.assign(x, [iv(0)], rhs);
        let rhs2 = nb.read(y, [iv(0)]);
        nb.assign(x, [iv(0)], rhs2);
    });
    let prog = b.finish();
    let diags = lint::lint_program(&prog, &LintConfig::default());
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::Sa001DoubleWrite && d.severity == Severity::Error),
        "double-write mutant not flagged: {diags:?}"
    );
    // The interpreter traps the same program at run time — the static
    // verdict agrees with the dynamic one.
    let cfg = MachineConfig::new(4, 32).with_cache_elems(0);
    assert!(
        simulate(&prog, &cfg).is_err(),
        "interpreter accepted mutant"
    );
}

#[test]
fn dangling_deferral_is_rejected_with_sa004() {
    // Reads X[k+1] in the second half-open range no statement ever writes:
    // a thread runtime would park the reader forever (dangling I-structure
    // deferral); the lint flags it without executing anything.
    let n = 32;
    let mut b = ProgramBuilder::new("mutant-dangling");
    let x = b.output("X", &[n]);
    let z = b.output("Z", &[n]);
    b.nest("produce-half", &[("k", 0, n as i64 / 2 - 1)], |nb| {
        nb.assign(x, [iv(0)], sapp::ir::Expr::LoopVar(0));
    });
    b.nest("consume-all", &[("k", 0, n as i64 - 1)], |nb| {
        let rhs = nb.read(x, [iv(0)]);
        nb.assign(z, [iv(0)], rhs);
    });
    let prog = b.finish();
    let diags = lint::lint_program(&prog, &LintConfig::default());
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::Sa004DanglingRead && d.severity == Severity::Error),
        "dangling-deferral mutant not flagged: {diags:?}"
    );
}
