//! Certification of the `sa-lint` static passes against the executing
//! engines:
//!
//! 1. **Estimator ≡ simulator** — on every affine registry workload the
//!    zero-execution communication estimate is bit-identical (per-PE
//!    counters, message totals) to the counting interpreter, across
//!    partition schemes × page sizes × PE counts. Workloads with runtime
//!    indirection are rejected with a typed error, mirroring
//!    `StaticOracle`'s `Unsupported`.
//! 2. **Verifier soundness on the registry** — `sapp lint` reports zero
//!    error-severity diagnostics on the stock registry (which every
//!    executor accepts), and flags seeded double-write and
//!    dangling-deferral mutants that the executors trap at run time.
//! 3. **Deadlock pass ≡ thread runtime** — the stock registry proves
//!    deadlock-free (SA008 clean) wherever the instance graph is statically
//!    buildable, a seeded cyclic-deferral mutant is rejected with SA008 and
//!    really fails on the thread runtime, and every wait the runtime
//!    *realizes* on the reduced suite is covered by the static dependence
//!    graph ([`sapp::lint::DepGraph::covers_wait`]).
//! 4. **Pruned search ≡ exhaustive search** — `search_with`'s static
//!    dependence-bound pruning returns bit-identical winners to the
//!    exhaustive parallel sweep on every registry workload, with the
//!    pruned fraction logged.

use sapp::core::search::{search_exhaustive_with, search_with, Objective, SearchSpace};
use sapp::core::{simulate, CountingOracle, StaticOracle};
use sapp::core::{Oracle, OracleError, RunConfig};
use sapp::ir::index::iv;
use sapp::ir::{ArrayId, InitPattern, ProgramBuilder};
use sapp::lint::{self, Code, DepGraph, EstimateError, LintConfig, Severity};
use sapp::loops::reduced_suite;
use sapp::machine::{MachineConfig, PartitionScheme};
use sapp::runtime::{execute, RuntimeConfig, RuntimeError};

/// The certification grid: schemes × page sizes × PE counts, no cache
/// (the estimator has no cache model by design).
fn grid() -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for scheme in [
        PartitionScheme::Modulo,
        PartitionScheme::Block,
        PartitionScheme::BlockCyclic { block_pages: 2 },
    ] {
        for &page in &[8usize, 32, 256] {
            for &pes in &[1usize, 4, 16] {
                out.push(
                    MachineConfig::new(pes, page)
                        .with_cache_elems(0)
                        .with_partition(scheme),
                );
            }
        }
    }
    out
}

#[test]
fn estimator_is_bit_identical_to_the_simulator_on_the_registry() {
    let mut affine = 0usize;
    let mut indirect = 0usize;
    for k in reduced_suite() {
        for cfg in grid() {
            match lint::estimate(&k.program, &cfg) {
                Err(EstimateError::Indirect { .. }) => {
                    indirect += 1;
                    // The rejection must be stable: the oracle adapter
                    // surfaces the same program as Unsupported.
                    let rc = RunConfig {
                        n_pes: cfg.n_pes,
                        cache_elems: 0,
                        ..RunConfig::default()
                    };
                    assert!(
                        matches!(
                            StaticOracle.measure(&k.program, &rc),
                            Err(OracleError::Unsupported(_))
                        ),
                        "{}: estimate rejected but StaticOracle accepted",
                        k.code
                    );
                    break; // indirection is config-independent
                }
                Err(e) => panic!("{} @ {cfg:?}: unexpected estimator error {e}", k.code),
                Ok(est) => {
                    affine += 1;
                    let sim = simulate(&k.program, &cfg)
                        .unwrap_or_else(|e| panic!("{}: simulator failed: {e}", k.code));
                    // `Stats` equality covers every per-PE counter.
                    assert_eq!(
                        est.stats, sim.stats,
                        "{} @ {cfg:?}: per-PE access counts diverge",
                        k.code
                    );
                    assert_eq!(
                        est.network_messages, sim.network_messages,
                        "{} @ {cfg:?}: network message totals diverge",
                        k.code
                    );
                }
            }
        }
    }
    // The registry must exercise both paths, or this test is vacuous.
    assert!(affine > 0, "no affine workload was certified");
    assert!(indirect > 0, "no indirect workload exercised the rejection");
}

#[test]
fn stock_registry_lints_clean_of_errors() {
    for k in reduced_suite() {
        let diags = lint::lint_program(&k.program, &LintConfig::default());
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{}: stock kernel has error diagnostics: {errors:?}",
            k.code
        );
    }
}

#[test]
fn seeded_double_write_is_rejected_with_sa001() {
    // K1-shaped kernel with a second statement recomputing the same cell —
    // the classic violation the paper's single-assignment rule forbids.
    let n = 64;
    let mut b = ProgramBuilder::new("mutant-double");
    let y = b.input("Y", &[n], InitPattern::Wavy);
    let x = b.output("X", &[n]);
    b.nest("dup", &[("k", 0, n as i64 - 1)], |nb| {
        let rhs = nb.read(y, [iv(0)]);
        nb.assign(x, [iv(0)], rhs);
        let rhs2 = nb.read(y, [iv(0)]);
        nb.assign(x, [iv(0)], rhs2);
    });
    let prog = b.finish();
    let diags = lint::lint_program(&prog, &LintConfig::default());
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::Sa001DoubleWrite && d.severity == Severity::Error),
        "double-write mutant not flagged: {diags:?}"
    );
    // The interpreter traps the same program at run time — the static
    // verdict agrees with the dynamic one.
    let cfg = MachineConfig::new(4, 32).with_cache_elems(0);
    assert!(
        simulate(&prog, &cfg).is_err(),
        "interpreter accepted mutant"
    );
}

#[test]
fn dangling_deferral_is_rejected_with_sa004() {
    // Reads X[k+1] in the second half-open range no statement ever writes:
    // a thread runtime would park the reader forever (dangling I-structure
    // deferral); the lint flags it without executing anything.
    let n = 32;
    let mut b = ProgramBuilder::new("mutant-dangling");
    let x = b.output("X", &[n]);
    let z = b.output("Z", &[n]);
    b.nest("produce-half", &[("k", 0, n as i64 / 2 - 1)], |nb| {
        nb.assign(x, [iv(0)], sapp::ir::Expr::LoopVar(0));
    });
    b.nest("consume-all", &[("k", 0, n as i64 - 1)], |nb| {
        let rhs = nb.read(x, [iv(0)]);
        nb.assign(z, [iv(0)], rhs);
    });
    let prog = b.finish();
    let diags = lint::lint_program(&prog, &LintConfig::default());
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::Sa004DanglingRead && d.severity == Severity::Error),
        "dangling-deferral mutant not flagged: {diags:?}"
    );
}

#[test]
fn seeded_cyclic_deferral_mutant_is_rejected_with_sa008() {
    // The consumer nest precedes its producer: every PE blocks on its
    // first read of X before any producer instance can run — a guaranteed
    // deadlock on the blocking-PE machine, at any partition. The program
    // is *not* SA004-dangling (X is fully written eventually), so only the
    // wait-graph cycle pass can catch it.
    let n = 32;
    let mut b = ProgramBuilder::new("mutant-cycle");
    let x = b.output("X", &[n]);
    let z = b.output("Z", &[n]);
    b.nest("consume", &[("k", 0, n as i64 - 1)], |nb| {
        let rhs = nb.read(x, [iv(0)]);
        nb.assign(z, [iv(0)], rhs);
    });
    b.nest("produce", &[("k", 0, n as i64 - 1)], |nb| {
        nb.assign(x, [iv(0)], sapp::ir::Expr::LoopVar(0));
    });
    let prog = b.finish();
    let diags = lint::lint_program(&prog, &LintConfig::default());
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::Sa008DeadlockCycle && d.severity == Severity::Error),
        "cyclic-deferral mutant not flagged with SA008: {diags:?}"
    );
    // The thread runtime agrees: the run tears down instead of completing.
    assert!(
        execute(&prog, &RuntimeConfig::paper(4, 8)).is_err(),
        "thread runtime completed a program the deadlock pass rejects"
    );
}

#[test]
fn stock_registry_proves_deadlock_free() {
    // Wherever the instance graph is statically buildable, the wait graph
    // must be acyclic (no SA008 error). Runtime-resolved indirection gets
    // an Info "not statically provable" note, never a spurious error.
    let mut proved = 0usize;
    for k in reduced_suite() {
        for (n_pes, page_size) in [(4usize, 32usize), (16, 8)] {
            let cfg = LintConfig {
                n_pes,
                page_size,
                ..LintConfig::default()
            };
            let diags = lint::check_deadlock(&k.program, &cfg);
            assert!(
                diags.iter().all(|d| d.severity != Severity::Error),
                "{} @ {n_pes} PEs / ps {page_size}: spurious SA008: {diags:?}",
                k.code
            );
            if diags.is_empty() {
                proved += 1;
            }
        }
    }
    assert!(proved > 0, "no workload got a full deadlock-freedom proof");
}

#[test]
fn runtime_wait_edges_fall_inside_the_static_graph() {
    // Release-mode version of the engine's debug assertion, plus a
    // non-vacuity guard: across the reduced suite and a recurrence chain,
    // the thread runtime must *realize* waits, and every one must be
    // covered by a static dependence edge.
    let mut programs: Vec<sapp::ir::Program> =
        reduced_suite().into_iter().map(|k| k.program).collect();
    // K5-shaped chain: X(i) = Z(i)·(Y(i) − X(i−1)) pipelines across page
    // boundaries, so deferrals are guaranteed at several PEs.
    let n = 257usize;
    let mut b = ProgramBuilder::new("chain");
    let y = b.input("Y", &[n], InitPattern::Wavy);
    let zz = b.input("Z", &[n], InitPattern::Harmonic);
    let x = b.array_with(
        "X",
        &[n],
        sapp::ir::program::ArrayInit::Prefix {
            pattern: InitPattern::Const(0.3),
            len: 1,
        },
    );
    b.nest("chain", &[("i", 1, n as i64 - 1)], |nb| {
        nb.assign(
            x,
            [iv(0)],
            nb.read(zz, [iv(0)]) * (nb.read(y, [iv(0)]) - nb.read(x, [iv(0).plus(-1)])),
        );
    });
    programs.push(b.finish());

    let mut observed = 0usize;
    for p in &programs {
        let g = DepGraph::build(p);
        for n_pes in [2usize, 5] {
            let rep = match execute(p, &RuntimeConfig::paper(n_pes, 32)) {
                Ok(rep) => rep,
                Err(RuntimeError::Unsupported(_)) => continue,
                Err(e) => panic!("{}: runtime failed: {e}", p.name),
            };
            for w in &rep.wait_edges {
                observed += 1;
                assert!(
                    g.covers_wait(w.phase, w.stmt, ArrayId(w.array), w.generation as usize),
                    "{}: runtime wait at phase {} stmt {} on array {} gen {} \
                     (addr {}) has no covering static edge",
                    p.name,
                    w.phase,
                    w.stmt,
                    w.array,
                    w.generation,
                    w.addr
                );
            }
        }
    }
    assert!(
        observed > 0,
        "no wait realized — the cross-check is vacuous"
    );
}

#[test]
fn pruned_search_is_bit_identical_to_exhaustive_on_the_registry() {
    let space = SearchSpace::default();
    let total_per_workload = space.schemes.len() * space.page_sizes.len();
    let mut pruned_total = 0usize;
    let mut candidates_total = 0usize;
    for k in reduced_suite() {
        let fast = search_with(&k.program, &space, &CountingOracle, Objective::default())
            .unwrap_or_else(|e| panic!("{}: pruned search failed: {e:?}", k.code));
        let slow =
            search_exhaustive_with(&k.program, &space, &CountingOracle, Objective::default())
                .unwrap_or_else(|e| panic!("{}: exhaustive search failed: {e:?}", k.code));
        assert_eq!(
            fast.scheme, slow.scheme,
            "{}: winner scheme differs",
            k.code
        );
        assert_eq!(
            fast.page_size, slow.page_size,
            "{}: page size differs",
            k.code
        );
        assert_eq!(
            fast.score.to_bits(),
            slow.score.to_bits(),
            "{}: score not bit-identical",
            k.code
        );
        assert_eq!(fast.messages, slow.messages, "{}: messages differ", k.code);
        assert_eq!(
            fast.remote_pct.to_bits(),
            slow.remote_pct.to_bits(),
            "{}: remote pct not bit-identical",
            k.code
        );
        assert_eq!(
            fast.evaluated + fast.pruned,
            total_per_workload,
            "{}: candidates lost",
            k.code
        );
        pruned_total += fast.pruned;
        candidates_total += total_per_workload;
    }
    println!(
        "search pruning: skipped {pruned_total}/{candidates_total} candidate \
         configurations across the reduced registry"
    );
}
