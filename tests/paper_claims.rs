//! Shape assertions for every figure and headline claim of the paper
//! (the EXP index of DESIGN.md). These are *qualitative* reproductions:
//! who wins, by roughly what factor, where the curves head — not absolute
//! axes from the authors' 1989 testbed.

use sapp::core::{simulate, SimReport};
use sapp::loops::{k14_pic1d, k18_hydro2d, suite};
use sapp::machine::{load_balance, MachineConfig};

fn run(code: &str, cfg: &MachineConfig) -> SimReport {
    let k = suite()
        .into_iter()
        .find(|k| k.code == code)
        .expect("kernel");
    simulate(&k.program, cfg).expect("simulation")
}

#[test]
fn fig1_skewed_hydro_fragment() {
    // 1 PE ⇒ everything local.
    assert_eq!(run("K1", &MachineConfig::new(1, 32)).remote_pct(), 0.0);
    for n in [2usize, 4, 8, 16, 32] {
        // No cache, ps 32: the paper's ≈22 % (skew 10/11 over 32-elem pages).
        let uncached = run("K1", &MachineConfig::new(n, 32).with_cache_elems(0)).remote_pct();
        assert!((20.0..24.0).contains(&uncached), "n={n}: {uncached:.2}%");
        // Cache: collapses to ≈1 % ("a reduction from 22% remote reads to
        // 1% remote reads", §8).
        let cached = run("K1", &MachineConfig::new(n, 32)).remote_pct();
        assert!(cached < 2.0, "n={n}: {cached:.2}%");
        // ps 64 halves the uncached crossing ratio.
        let uncached64 = run("K1", &MachineConfig::new(n, 64).with_cache_elems(0)).remote_pct();
        assert!(
            (uncached64 - uncached / 2.0).abs() < 2.0,
            "n={n}: ps64 {uncached64:.2}% vs ps32/2 {:.2}%",
            uncached / 2.0
        );
    }
}

#[test]
fn fig2_cyclic_iccg() {
    // Without a cache "most are remote" and it worsens with PEs.
    let mut prev = 0.0;
    for n in [2usize, 4, 8, 16, 32] {
        let uncached = run("K2", &MachineConfig::new(n, 32).with_cache_elems(0)).remote_pct();
        assert!(uncached >= 40.0, "n={n}: {uncached:.2}%");
        assert!(uncached >= prev, "uncached must not improve with PEs");
        prev = uncached;
    }
    // With the cache the remote percentage collapses by an order of
    // magnitude ("caching ... can reduce the percentage of remote reads
    // significantly", Fig. 2 caption).
    for n in [4usize, 16, 32] {
        let cached = run("K2", &MachineConfig::new(n, 32)).remote_pct();
        let uncached = run("K2", &MachineConfig::new(n, 32).with_cache_elems(0)).remote_pct();
        assert!(
            cached * 10.0 < uncached,
            "n={n}: {cached:.2}% vs {uncached:.2}%"
        );
        assert!(cached < 5.0, "n={n}: {cached:.2}%");
    }
}

#[test]
fn fig3_cyclic_skewed_hydro2d_decreases_with_pes() {
    // Steady-state (multi-pass) K18 at the official size: the cached
    // remote % *decreases* as PEs grow (the paper's counter-intuitive
    // headline), and stays below the paper's ≈8 % ceiling.
    let k = k18_hydro2d::build_with_passes(101, 5);
    let at4 = simulate(&k.program, &MachineConfig::new(4, 32))
        .unwrap()
        .remote_pct();
    let at16 = simulate(&k.program, &MachineConfig::new(16, 32))
        .unwrap()
        .remote_pct();
    assert!(
        at16 < at4,
        "cached remote% must fall with PEs: {at4:.2}% → {at16:.2}%"
    );
    assert!(
        at16 * 2.0 <= at4,
        "the drop is substantial: {at4:.2}% → {at16:.2}%"
    );
    for n in [2usize, 4, 8, 16] {
        let pct = simulate(&k.program, &MachineConfig::new(n, 32))
            .unwrap()
            .remote_pct();
        assert!(pct < 8.0, "n={n}: {pct:.2}%");
    }
}

#[test]
fn fig4_random_glre_resists_caching() {
    for n in [8usize, 16, 32] {
        let cached = run("K6", &MachineConfig::new(n, 32)).remote_pct();
        let uncached = run("K6", &MachineConfig::new(n, 32).with_cache_elems(0)).remote_pct();
        // High remote percentage "regardless of the presence or absence of
        // caching" (§7.1.4).
        assert!(cached >= 40.0, "n={n}: cached {cached:.2}%");
        assert!(uncached >= 40.0, "n={n}: uncached {uncached:.2}%");
        assert!(
            uncached - cached < 5.0,
            "cache must barely help RD: {cached:.2}% vs {uncached:.2}%"
        );
    }
    // …but a larger cache does rescue it ("poor performance of RD can be
    // overcome by larger cache sizes", Fig. 4 caption).
    let k = suite().into_iter().find(|k| k.code == "K6").unwrap();
    let small = simulate(&k.program, &MachineConfig::new(16, 32))
        .unwrap()
        .remote_pct();
    let big = simulate(
        &k.program,
        &MachineConfig::new(16, 32).with_cache_elems(8192),
    )
    .unwrap()
    .remote_pct();
    assert!(
        big * 2.0 < small,
        "8192-elem cache: {small:.2}% → {big:.2}%"
    );
}

#[test]
fn fig5_load_balance_on_64_pes() {
    let k = k18_hydro2d::build_with_passes(1022, 2);
    let rep = simulate(&k.program, &MachineConfig::new(64, 32)).unwrap();
    let local = load_balance(&rep.stats.local_reads_per_pe());
    let remote = load_balance(&rep.stats.remote_reads_per_pe());
    let writes = load_balance(&rep.stats.writes_per_pe());
    // "each of the sixty-four PEs performs a comparable number of remote
    // reads and local reads" (§7.2).
    assert!(local.cv < 0.10, "local-read CV {:.3}", local.cv);
    assert!(remote.cv < 0.10, "remote-read CV {:.3}", remote.cv);
    assert!(local.jain > 0.99 && remote.jain > 0.99);
    // "single assignment and equal partitioning force a nearly equal number
    // of writes on each processor" (§8).
    assert!(writes.cv < 0.10, "write CV {:.3}", writes.cv);
    // Every PE participates.
    assert!(remote.min > 0 && local.min > 0);
}

#[test]
fn summary_class_claims() {
    // MD kernels: "always achieve a 0% remote access ratio" (§7.1.1).
    for code in ["K3", "K14", "K22", "K24"] {
        for n in [2usize, 8, 32] {
            let pct = run(code, &MachineConfig::new(n, 32)).remote_pct();
            assert_eq!(pct, 0.0, "{code} at {n} PEs");
        }
    }
    // The paper's matched exemplar is the K14 fragment specifically.
    let frag = k14_pic1d::build(1001);
    let rep = simulate(&frag.program, &MachineConfig::new(16, 32)).unwrap();
    assert_eq!(rep.stats.remote_reads(), 0);

    // SD kernels stay below 10 % with the cache (§8: "SD access patterns
    // tend to achieve a very low (< 10%) remote access ratio").
    for code in ["K1", "K5", "K7", "K11", "K12"] {
        let pct = run(code, &MachineConfig::new(16, 32)).remote_pct();
        assert!(pct < 10.0, "{code}: {pct:.2}%");
    }

    // "For most access distributions, the percentages of remote accesses
    // are less than 10% when using a cache of 256 elements" — majority of
    // the suite.
    let below = suite()
        .iter()
        .filter(|k| {
            simulate(&k.program, &MachineConfig::new(16, 32))
                .unwrap()
                .remote_pct()
                < 10.0
        })
        .count();
    assert!(
        below * 2 > suite().len(),
        "{below}/{} kernels below 10 %",
        suite().len()
    );
}

#[test]
fn conclusion_message_accounting() {
    // Every remote read is exactly one request + one reply; no coherence
    // traffic exists at all (§4).
    for code in ["K1", "K2", "K6", "K18"] {
        let rep = run(code, &MachineConfig::new(16, 32));
        assert_eq!(rep.network_messages, 2 * rep.stats.page_fetches);
        assert_eq!(rep.stats.page_fetches, rep.stats.remote_reads());
    }
}
