//! Property-based tests on the core invariants (proptest).

use proptest::prelude::*;

use sapp::core::{simulate, verify_against_reference};
use sapp::ir::index::iv;
use sapp::ir::program::{ArrayDecl, ArrayInit};
use sapp::ir::{Grid, InitPattern, ProgramBuilder};
use sapp::machine::{
    pages_in, ArrayShape, CacheOutcome, CachePolicy, MachineConfig, PageCache, PageKey,
    PartialPagePolicy, PartitionScheme, Placement,
};

fn scheme_strategy() -> impl Strategy<Value = PartitionScheme> {
    prop_oneof![
        Just(PartitionScheme::Modulo),
        Just(PartitionScheme::Block),
        (1usize..6).prop_map(|b| PartitionScheme::BlockCyclic { block_pages: b }),
        Just(PartitionScheme::RowBand),
        ((1usize..6), (1usize..6)).prop_map(|(tile_rows, tile_cols)| PartitionScheme::Tile2D {
            tile_rows,
            tile_cols,
        }),
    ]
}

proptest! {
    /// Every page has exactly one owner and that owner is a valid PE.
    #[test]
    fn ownership_is_total_and_in_range(
        scheme in scheme_strategy(),
        pages in 1usize..200,
        n_pes in 1usize..65,
    ) {
        for p in 0..pages {
            let o = scheme.owner(p, pages, n_pes);
            prop_assert!(o < n_pes);
        }
    }

    /// Block ownership is monotone (contiguous chunks).
    #[test]
    fn block_ownership_is_monotone(pages in 1usize..300, n_pes in 1usize..33) {
        let mut prev = 0;
        for p in 0..pages {
            let o = PartitionScheme::Block.owner(p, pages, n_pes);
            prop_assert!(o >= prev, "page {p}: owner {o} < {prev}");
            prop_assert!(o <= prev + 1, "block owners must step by ≤ 1");
            prev = o;
        }
    }

    /// Modulo distributes pages as evenly as arithmetic allows.
    #[test]
    fn modulo_balance_is_tight(pages in 1usize..400, n_pes in 1usize..65) {
        let mut counts = vec![0usize; n_pes];
        for p in 0..pages {
            counts[PartitionScheme::Modulo.owner(p, pages, n_pes)] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }

    /// An LRU cache never exceeds capacity and hits after an insert.
    #[test]
    fn cache_capacity_and_residency(
        capacity in 0usize..16,
        ops in prop::collection::vec((0usize..4, 0usize..40), 1..200),
    ) {
        let mut cache = PageCache::new(capacity, CachePolicy::Lru);
        for (array, page) in ops {
            let key = PageKey { array, page, generation: 0 };
            match cache.probe(key, 0, PartialPagePolicy::Ignore) {
                CacheOutcome::Miss => {
                    cache.insert(key, None);
                    if capacity > 0 {
                        prop_assert_eq!(
                            cache.probe(key, 0, PartialPagePolicy::Ignore),
                            CacheOutcome::Hit
                        );
                    }
                }
                CacheOutcome::Hit => {}
                CacheOutcome::PartialMiss => prop_assert!(false, "no partial pages inserted"),
            }
            prop_assert!(cache.len() <= capacity.max(1));
            prop_assert!(cache.len() <= capacity || capacity == 0);
        }
    }

    /// Counting invariant: local + cached + remote = all reads; writes =
    /// iteration count; and the distributed values equal the reference —
    /// for randomly generated skewed kernels over random machines.
    #[test]
    fn random_skewed_kernels_conserve_and_verify(
        n in 64usize..512,
        skew in 0i64..20,
        n_pes in 1usize..17,
        page_size in prop::sample::select(vec![8usize, 16, 32, 64]),
        cached in proptest::bool::ANY,
    ) {
        let mut b = ProgramBuilder::new("prop");
        let y = b.input("Y", &[n + skew as usize + 1], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(skew)]) * 2.0);
        });
        let p = b.finish();
        let cfg = if cached {
            MachineConfig::new(n_pes, page_size)
        } else {
            MachineConfig::new(n_pes, page_size).with_cache_elems(0)
        };
        let rep = simulate(&p, &cfg).expect("sim");
        prop_assert_eq!(rep.stats.writes(), n as u64);
        prop_assert_eq!(
            rep.stats.total_reads(),
            rep.stats.local_reads() + rep.stats.cached_reads() + rep.stats.remote_reads()
        );
        prop_assert_eq!(rep.stats.total_reads(), n as u64);
        // With one PE nothing is remote.
        if n_pes == 1 {
            prop_assert_eq!(rep.stats.remote_reads(), 0);
        }
        verify_against_reference(&p, &cfg).map_err(TestCaseError::fail)?;
    }

    /// The cache can only reduce remote reads, never increase them.
    #[test]
    fn cache_monotonicity(
        n in 64usize..512,
        skew in 1i64..16,
        n_pes in 2usize..17,
    ) {
        let mut b = ProgramBuilder::new("mono");
        let y = b.input("Y", &[n + 16], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        b.nest("s", &[("k", 0, n as i64 - 1)], |nb| {
            nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(skew)]));
        });
        let p = b.finish();
        let with = simulate(&p, &MachineConfig::new(n_pes, 32)).expect("sim");
        let without = simulate(&p, &MachineConfig::new(n_pes, 32).with_cache_elems(0)).expect("sim");
        prop_assert!(with.stats.remote_reads() <= without.stats.remote_reads());
    }

    /// pages_in/page arithmetic round-trips.
    #[test]
    fn page_arithmetic_roundtrips(len in 1usize..10_000, ps in 1usize..257) {
        let pages = pages_in(len, ps);
        prop_assert!(pages * ps >= len);
        prop_assert!((pages - 1) * ps < len);
    }

    /// The multi-dim addressing helper agrees with the partitioner: for
    /// random dims and schemes, `owner(linearize(i,j,k))` computed through
    /// `Grid` equals the owner computed through the builder's declared
    /// addressing (`ArrayDecl::linearize` — the two linearizations must be
    /// the same function, so screening a stencil tap and declaring its
    /// array can never disagree), every owner is a valid PE, and the
    /// unit-stride dimension advances the linear address by exactly 1 —
    /// the adjacency the replay engine's closed-form page intervals and
    /// `owner()`'s page granularity together turn into contiguous owned
    /// index ranges.
    #[test]
    fn grid_addressing_agrees_with_partition_owner(
        dims in prop::collection::vec(1usize..9, 1..4),
        scheme in scheme_strategy(),
        ps in prop::sample::select(vec![2usize, 4, 8, 32]),
        n_pes in 1usize..17,
    ) {
        let g = Grid::new(&dims);
        let decl = ArrayDecl {
            name: "G".into(),
            dims: dims.clone(),
            init: ArrayInit::Undefined,
        };
        let pages = pages_in(g.len().max(1), ps);
        let owner_of = |addr: usize| scheme.owner(addr / ps, pages, n_pes);

        // Enumerate the whole grid (≤ 8³ cells) by linear address, mapping
        // each address back to its index vector through the strides.
        let strides = g.strides();
        for addr in 0..g.len() {
            let idx: Vec<i64> = strides.iter().map(|&s| (addr / s) as i64)
                .zip(&dims)
                .map(|(q, &e)| q % e as i64)
                .collect();
            prop_assert_eq!(g.linearize(&idx), Some(addr), "idx {:?}", &idx);
            prop_assert_eq!(decl.linearize(&idx).ok(), Some(addr));
            prop_assert!(owner_of(addr) < n_pes);
            // Unit-stride neighbours differ by exactly 1 in address — the
            // adjacency that makes page ownership interval-shaped along
            // the innermost dimension (owner() is a function of the page,
            // so this is the non-trivial half of that property).
            let mut next = idx.clone();
            *next.last_mut().unwrap() += 1;
            if let Some(naddr) = g.linearize(&next) {
                prop_assert_eq!(naddr, addr + 1, "idx {:?}", &idx);
            }
        }
    }

    /// Geometry-aware ownership agrees with grid linearization: for every
    /// cell of a random 2-D grid, `Placement::owner_of_addr(linearize(r,c))`
    /// is a valid PE, and at element granularity (page size 1) the tiled
    /// schemes match their closed-form grid formulas — `Tile2D` owns by
    /// `((r/tr)·tiles_per_row + c/tc) mod n`, `RowBand` by contiguous row
    /// bands — so screening a stencil tap through the placement can never
    /// disagree with the owner the executors compute.
    #[test]
    fn placement_owner_agrees_with_grid_formulas(
        rows in 1usize..17,
        cols in 1usize..17,
        tr in 1usize..6,
        tc in 1usize..6,
        ps in prop::sample::select(vec![1usize, 2, 4, 8, 32]),
        n_pes in 1usize..17,
    ) {
        let g = Grid::new(&[rows, cols]);
        let shape = ArrayShape::from_dims(&[rows, cols]);
        let tile = Placement::new(
            PartitionScheme::Tile2D { tile_rows: tr, tile_cols: tc },
            ps,
            n_pes,
            shape,
        );
        let band = Placement::new(PartitionScheme::RowBand, ps, n_pes, shape);
        let tiles_per_row = cols.div_ceil(tc).max(1);
        let band_rows = rows.div_ceil(n_pes).max(1);
        for r in 0..rows {
            for c in 0..cols {
                let addr = g.linearize(&[r as i64, c as i64]).expect("in range");
                prop_assert!(tile.owner_of_addr(addr) < n_pes);
                prop_assert!(band.owner_of_addr(addr) < n_pes);
                if ps == 1 {
                    // Element granularity: the page IS the element, so the
                    // owner must be the grid formula exactly.
                    let want = ((r / tr) * tiles_per_row + c / tc) % n_pes;
                    prop_assert_eq!(tile.owner_of_addr(addr), want, "tile ({r},{c})");
                    let want_band = (r / band_rows).min(n_pes - 1);
                    prop_assert_eq!(band.owner_of_addr(addr), want_band, "band ({r},{c})");
                }
            }
        }
    }
}
