//! Differential correctness of the compiled access replay
//! (`sa_core::replay`) against the statement-by-statement interpreter
//! (`sa_core::exec::simulate`):
//!
//! 1. **Full Livermore suite × figure grid** — every kernel, every grid
//!    point of the paper's figures, bit-identical `Stats` (global and
//!    per-nest), message/hop/link-load totals included.
//! 2. **Proptest** — randomly generated affine nests (1–2 levels, skews,
//!    scaled subscripts, reductions, multi-statement bodies) × random
//!    machine configs.
//! 3. **Oracle equivalence** — `FastCountingOracle` in every engine mode
//!    produces the same `RunRecord`s as `CountingOracle` over a plan.

use proptest::prelude::*;

use sapp::core::exec::simulate;
use sapp::core::plan::{ExperimentPlan, RunConfig};
use sapp::core::replay;
use sapp::core::{par_map, CountingOracle, Engine, FastCountingOracle, Oracle};
use sapp::ir::index::iv;
use sapp::ir::{InitPattern, Program, ProgramBuilder, ReduceOp};
use sapp::loops::suite;
use sapp::machine::{CachePolicy, MachineConfig, NetworkTopology, PartitionScheme};

/// Assert replay ≡ interpreter on every counter for one (program, config).
fn assert_identical(label: &str, program: &Program, cfg: &MachineConfig) {
    let sim = simulate(program, cfg)
        .unwrap_or_else(|e| panic!("{label}: interpreter rejected the program: {e}"));
    let rep = replay::counts(program, cfg)
        .unwrap_or_else(|e| panic!("{label}: replay rejected the program: {e}"));
    assert_eq!(rep.stats, sim.stats, "{label}: global stats");
    assert_eq!(rep.per_nest, sim.per_nest, "{label}: per-nest stats");
    assert_eq!(
        rep.network_messages, sim.network_messages,
        "{label}: messages"
    );
    assert_eq!(rep.network_hops, sim.network_hops, "{label}: hops");
    assert_eq!(rep.max_link_load, sim.max_link_load, "{label}: link load");
}

/// The paper's figure grid: PE counts × page sizes × cache on/off.
fn figure_grid() -> Vec<MachineConfig> {
    let mut grid = Vec::new();
    for &n_pes in &[1usize, 2, 4, 8, 16, 32] {
        for &ps in &[32usize, 64] {
            for &cached in &[true, false] {
                let cfg = MachineConfig::new(n_pes, ps);
                grid.push(if cached { cfg } else { cfg.with_cache_elems(0) });
            }
        }
    }
    grid
}

#[test]
fn full_suite_bit_identical_across_the_figure_grid() {
    // Every kernel of the suite is statically classifiable (affine anchors
    // and subscripts, or gathers through statically initialized index
    // arrays), so the strict replay engine must accept all of them and
    // reproduce the interpreter's counts exactly. The (kernel, config)
    // points are independent, so fan the differential itself out.
    let kernels = suite();
    let grid = figure_grid();
    let points: Vec<(usize, usize)> = (0..kernels.len())
        .flat_map(|k| (0..grid.len()).map(move |c| (k, c)))
        .collect();
    par_map(&points, |&(k, c)| {
        let kernel = &kernels[k];
        assert_identical(
            &format!("{} @ {:?}", kernel.code, grid[c]),
            &kernel.program,
            &grid[c],
        );
        Ok::<_, std::convert::Infallible>(())
    })
    .unwrap();
}

#[test]
fn multi_pass_k18_with_reinits_bit_identical() {
    // The Figure-3 shape: five passes separated by §5 re-initialization
    // rounds — generation bumps, cache invalidation and host-protocol
    // messages all cross the replay/interpreter boundary.
    let k = sapp::loops::k18_hydro2d::build_with_passes(101, 5);
    for cfg in [
        MachineConfig::new(16, 32),
        MachineConfig::new(16, 32).with_cache_elems(0),
        MachineConfig::new(8, 64).with_network(NetworkTopology::Hypercube),
    ] {
        assert_identical("K18×5", &k.program, &cfg);
    }
}

#[test]
fn gather_kernels_bit_identical_with_contended_networks() {
    // K13/K14F: the Random-class gathers resolve through statically
    // initialized index arrays, so replay handles them without fallback —
    // including hop and per-link accounting on routed topologies.
    for (label, program) in [
        ("K13", sapp::loops::k13_pic2d::build(1001).program),
        ("K14F", sapp::loops::k14_pic1d::build_full(1001).program),
    ] {
        for net in [
            NetworkTopology::Ring,
            NetworkTopology::Mesh2D,
            NetworkTopology::Hypercube,
        ] {
            let cfg = MachineConfig::new(16, 32).with_network(net);
            assert_identical(label, &program, &cfg);
        }
    }
}

#[test]
fn scale_workloads_bit_identical_across_the_figure_grid() {
    // The stencil family and the static-index SpMV must lower to the
    // strict replay engine (multi-dim affine subscripts; CSR gathers
    // through statically initialized row_ptr/col_idx) and reproduce the
    // interpreter bit for bit across the whole figure grid at reduced
    // sizes.
    let kernels: Vec<_> = sapp::loops::workloads()
        .iter()
        .filter(|w| w.family == sapp::loops::Family::Scale && w.code != "SPMVD")
        .map(|w| w.reduced())
        .collect();
    let grid = figure_grid();
    let points: Vec<(usize, usize)> = (0..kernels.len())
        .flat_map(|k| (0..grid.len()).map(move |c| (k, c)))
        .collect();
    par_map(&points, |&(k, c)| {
        let kernel = &kernels[k];
        assert_identical(
            &format!("{} @ {:?}", kernel.code, grid[c]),
            &kernel.program,
            &grid[c],
        );
        Ok::<_, std::convert::Infallible>(())
    })
    .unwrap();
}

#[test]
fn stencils_bit_identical_under_tiled_schemes_and_routed_topologies() {
    // The geometry-aware schemes exercise the placement layer end-to-end:
    // replay's owned-interval enumeration must reproduce the interpreter's
    // tile-strided page runs exactly, and every modeled message must price
    // identically through the shared link models — for each stencil of the
    // scale family at reduced size, across tiled schemes × routed
    // topologies.
    let kernels: Vec<_> = ["ST5", "ST9", "ST7"]
        .iter()
        .map(|c| sapp::loops::workload(c).unwrap().reduced())
        .collect();
    let schemes = [
        PartitionScheme::RowBand,
        PartitionScheme::Tile2D {
            tile_rows: 8,
            tile_cols: 8,
        },
        PartitionScheme::Tile2D {
            tile_rows: 3,
            tile_cols: 17,
        },
    ];
    let nets = [
        NetworkTopology::Bus,
        NetworkTopology::Mesh2D,
        NetworkTopology::Torus2D,
    ];
    let points: Vec<(usize, usize, usize)> = (0..kernels.len())
        .flat_map(|k| (0..schemes.len()).flat_map(move |s| (0..nets.len()).map(move |n| (k, s, n))))
        .collect();
    par_map(&points, |&(k, s, n)| {
        let kernel = &kernels[k];
        for cached in [true, false] {
            let cfg = MachineConfig::new(16, 32)
                .with_partition(schemes[s])
                .with_network(nets[n]);
            let cfg = if cached { cfg } else { cfg.with_cache_elems(0) };
            assert_identical(
                &format!("{} @ {:?} × {:?}", kernel.code, schemes[s], nets[n]),
                &kernel.program,
                &cfg,
            );
        }
        Ok::<_, std::convert::Infallible>(())
    })
    .unwrap();
}

#[test]
fn prefix_spmv_falls_back_cleanly_to_the_interpreter() {
    // SPMVD's index data is only Prefix-initialized, which the replay
    // compiler must refuse (it resolves gathers from static init patterns)
    // — and the auto engine must transparently interpret instead, with
    // counts identical to a direct simulation.
    let k = sapp::loops::workload("SPMVD").unwrap().reduced();
    let cfg = MachineConfig::new(8, 32);
    match replay::counts(&k.program, &cfg) {
        Err(replay::ReplayError::Unsupported { reason, .. }) => {
            assert!(
                reason.contains("not fully statically initialized"),
                "{reason}"
            );
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    let auto = replay::counts_or_simulate(&k.program, &cfg).expect("fallback simulates");
    assert_eq!(auto.engine, replay::CountEngine::Interp);
    let sim = simulate(&k.program, &cfg).unwrap();
    assert_eq!(auto.stats, sim.stats);
    assert_eq!(auto.network_messages, sim.network_messages);
}

#[test]
fn large_stencil_and_spmv_slices_bit_identical() {
    // One mid-size slice per workload class, beyond the reduced sizes, so
    // the closed-form page-interval math sees page counts the Livermore
    // suite never produces (release CI runs this at full speed).
    let st = sapp::loops::stencil::build_jacobi5(96, 80, 2);
    let sp = sapp::loops::spmv::build_csr(1024, 768, 6);
    for cfg in [
        MachineConfig::new(16, 32),
        MachineConfig::new(64, 32).with_cache_elems(0),
        MachineConfig::new(16, 64).with_partition(PartitionScheme::Block),
    ] {
        assert_identical("ST5@96x80", &st.program, &cfg);
        assert_identical("SPMV@1024", &sp.program, &cfg);
    }
}

#[test]
fn fast_oracle_equals_counting_oracle_over_a_plan() {
    let k = sapp::loops::k12_first_diff::build(1000);
    let plan = ExperimentPlan::new()
        .page_sizes(&[32, 64])
        .cache_flags(&[true, false])
        .pes(&[1, 4, 16]);
    let reference = plan.run(&k.program, &CountingOracle).unwrap();
    for engine in [Engine::Interp, Engine::Replay, Engine::Auto] {
        let fast = plan
            .run(&k.program, &FastCountingOracle::with_engine(engine))
            .unwrap();
        assert_eq!(
            fast.records(),
            reference.records(),
            "engine {}",
            engine.name()
        );
    }
}

#[test]
fn strict_replay_measures_every_suite_kernel() {
    // The `--engine replay` CLI path must not need fallback anywhere in
    // the suite.
    let oracle = FastCountingOracle::with_engine(Engine::Replay);
    for kernel in suite() {
        let rec = oracle
            .measure(&kernel.program, &RunConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.code));
        assert!(rec.total_reads > 0 || rec.writes > 0, "{}", kernel.code);
    }
}

// ---------------------------------------------------------------------------
// Proptest: random affine nests × random machine configs
// ---------------------------------------------------------------------------

/// Parameters of one generated affine statement.
#[derive(Debug, Clone)]
struct GenStmt {
    /// Reduce instead of assign.
    reduce: bool,
    /// `(coeff on the innermost var, offset)` per read, innermost-affine.
    reads: Vec<(i64, i64)>,
    /// Row skew of an extra 2-D read along the outer var (2-level nests
    /// only) — exercises outer-variable coefficients in the address form.
    outer_skew: i64,
}

/// Parameters of one generated program.
#[derive(Debug, Clone)]
struct GenProgram {
    /// Trip counts: 1-level `[n]` or 2-level `[outer, inner]`.
    trips: Vec<usize>,
    stmts: Vec<GenStmt>,
    /// Append a second nest re-reading the first nest's outputs.
    chain: bool,
}

const MAX_COEFF: i64 = 3;
const OFF_PAD: i64 = 12; // offsets are generated in -OFF_PAD..=OFF_PAD

fn stmt_strategy() -> impl Strategy<Value = GenStmt> {
    (
        proptest::bool::ANY,
        proptest::collection::vec((1i64..=MAX_COEFF, -OFF_PAD..=OFF_PAD), 1..4),
        0i64..3,
    )
        .prop_map(|(reduce, reads, outer_skew)| GenStmt {
            reduce,
            reads,
            outer_skew,
        })
}

fn program_strategy() -> impl Strategy<Value = GenProgram> {
    (
        prop_oneof![
            (2usize..60).prop_map(|n| vec![n]),
            ((2usize..12), (2usize..24)).prop_map(|(a, b)| vec![a, b]),
        ],
        proptest::collection::vec(stmt_strategy(), 1..4),
        proptest::bool::ANY,
    )
        .prop_map(|(trips, stmts, chain)| GenProgram {
            trips,
            stmts,
            chain,
        })
}

/// Materialize a generated spec into a valid single-assignment program:
/// every statement writes its own output array at the identity subscript
/// (so no double writes), and read arrays are padded so every generated
/// subscript stays in bounds.
fn build_program(spec: &GenProgram) -> Program {
    let mut b = ProgramBuilder::new("gen");
    let depth = spec.trips.len();
    let inner = spec.trips[depth - 1];
    let outer = if depth == 2 { spec.trips[0] } else { 1 };

    // Shared inputs large enough for any (coeff, offset) pair.
    let read_len = (MAX_COEFF * (inner as i64 - 1) + 2 * OFF_PAD + 1) as usize;
    let y = b.input("Y", &[read_len], InitPattern::Wavy);
    let y2 = b.input("Y2", &[outer + 3, inner], InitPattern::Harmonic);

    let mut outputs = Vec::new();
    for (si, stmt) in spec.stmts.iter().enumerate() {
        let mk_value = |nb: &sapp::ir::builder::NestBuilder| {
            let mut value: Option<sapp::ir::Expr> = None;
            for &(c, off) in &stmt.reads {
                // Shift by OFF_PAD so the smallest generated index is 0.
                let idx = iv(depth - 1).scale(c).plus(off + OFF_PAD);
                let read = nb.read(y, [idx]);
                value = Some(match value {
                    None => read,
                    Some(v) => v + read,
                });
            }
            let mut value = value.expect("at least one read");
            if depth == 2 {
                // Outer-variable coefficient in the address form.
                value = value + nb.read(y2, [iv(0).plus(stmt.outer_skew), iv(1)]);
            }
            value
        };
        if stmt.reduce {
            let s = b.scalar(format!("s{si}"));
            b.nest(format!("n{si}"), &bounds(outer, inner, depth), |nb| {
                nb.reduce(s, ReduceOp::Sum, mk_value(nb));
            });
        } else {
            let dims: Vec<usize> = if depth == 2 {
                vec![outer, inner]
            } else {
                vec![inner]
            };
            let x = b.output(format!("X{si}"), &dims);
            outputs.push((x, dims));
            b.nest(format!("n{si}"), &bounds(outer, inner, depth), |nb| {
                if depth == 2 {
                    nb.assign(x, [iv(0), iv(1)], mk_value(nb));
                } else {
                    nb.assign(x, [iv(0)], mk_value(nb));
                }
            });
        }
    }

    if spec.chain {
        // A follow-up nest reading the produced arrays (matched subscripts
        // — always defined), exercising cross-nest cache state.
        for (ci, (x, dims)) in outputs.iter().enumerate() {
            let z = b.output(format!("Z{ci}"), dims);
            if depth == 2 {
                let (o, i) = (dims[0], dims[1]);
                b.nest(format!("c{ci}"), &bounds(o, i, 2), |nb| {
                    nb.assign(z, [iv(0), iv(1)], nb.read(*x, [iv(0), iv(1)]) * 2.0);
                });
            } else {
                b.nest(format!("c{ci}"), &bounds(1, dims[0], 1), |nb| {
                    nb.assign(z, [iv(0)], nb.read(*x, [iv(0)]) * 2.0);
                });
            }
        }
    }
    b.finish()
}

fn bounds(outer: usize, inner: usize, depth: usize) -> Vec<(&'static str, i64, i64)> {
    if depth == 2 {
        vec![("i", 0, outer as i64 - 1), ("j", 0, inner as i64 - 1)]
    } else {
        vec![("k", 0, inner as i64 - 1)]
    }
}

fn config_strategy() -> impl Strategy<Value = MachineConfig> {
    (
        (
            1usize..17,
            proptest::sample::select(vec![4usize, 8, 16, 32, 64]),
            proptest::sample::select(vec![0usize, 32, 64, 256]),
        ),
        (
            prop_oneof![
                Just(PartitionScheme::Modulo),
                Just(PartitionScheme::Block),
                (1usize..4).prop_map(|b| PartitionScheme::BlockCyclic { block_pages: b }),
                Just(PartitionScheme::RowBand),
                ((1usize..9), (1usize..9)).prop_map(|(tile_rows, tile_cols)| {
                    PartitionScheme::Tile2D {
                        tile_rows,
                        tile_cols,
                    }
                }),
            ],
            prop_oneof![
                Just(CachePolicy::Lru),
                Just(CachePolicy::Fifo),
                (1u64..1000).prop_map(|seed| CachePolicy::Random { seed }),
            ],
            proptest::sample::select(vec![
                NetworkTopology::Ideal,
                NetworkTopology::Crossbar,
                NetworkTopology::Bus,
                NetworkTopology::Ring,
                NetworkTopology::Mesh2D,
                NetworkTopology::Torus2D,
                NetworkTopology::Hypercube,
            ]),
        ),
    )
        .prop_map(|((n_pes, ps, cache), (scheme, policy, net))| {
            MachineConfig::new(n_pes, ps)
                .with_cache_elems(cache)
                .with_partition(scheme)
                .with_cache_policy(policy)
                .with_network(net)
        })
}

proptest! {
    /// Replay ≡ interpreter on random affine programs × random machines.
    #[test]
    fn random_affine_nests_bit_identical(
        spec in program_strategy(),
        cfg in config_strategy(),
    ) {
        let program = build_program(&spec);
        let sim = simulate(&program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let rep = replay::counts(&program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&rep.stats, &sim.stats, "spec {:?} cfg {:?}", &spec, &cfg);
        prop_assert_eq!(&rep.per_nest, &sim.per_nest);
        prop_assert_eq!(rep.network_messages, sim.network_messages);
        prop_assert_eq!(rep.network_hops, sim.network_hops);
        prop_assert_eq!(rep.max_link_load, sim.max_link_load);
    }
}

// ---------------------------------------------------------------------------
// Proptest: random multi-dim stencils and random CSR structures
// ---------------------------------------------------------------------------

/// A random halo-shrinking stencil: `sweeps` cross-shaped sweeps of halo
/// width `halo` over a random 2-D/3-D grid. Each sweep writes a fresh array
/// over an interior shrunk by one halo (so no boundary nests are needed and
/// the program is valid single-assignment for *any* dims — undersized grids
/// simply produce empty nests, which replay must also count correctly).
#[derive(Debug, Clone)]
struct GenStencil {
    dims: Vec<usize>,
    halo: i64,
    sweeps: usize,
}

fn stencil_spec_strategy() -> impl Strategy<Value = GenStencil> {
    (
        1i64..4,
        1usize..3,
        proptest::collection::vec(0usize..12, 2..4),
    )
        .prop_map(|(halo, sweeps, slack)| GenStencil {
            // Extents start at the smallest grid with a non-empty first
            // sweep (2·halo + 1) and vary upward from there.
            dims: slack.iter().map(|&s| (2 * halo + 1) as usize + s).collect(),
            halo,
            sweeps,
        })
}

fn build_halo_stencil(spec: &GenStencil) -> Program {
    let rank = spec.dims.len();
    let names = ["i", "j", "k"];
    let mut b = ProgramBuilder::new("halo");
    let mut src = b.input("U", &spec.dims, InitPattern::Wavy);
    for s in 0..spec.sweeps {
        let dst = b.output(format!("W{s}"), &spec.dims);
        let m = (s as i64 + 1) * spec.halo;
        let loops: Vec<(&str, i64, i64)> = spec
            .dims
            .iter()
            .enumerate()
            .map(|(d, &e)| (names[d], m, e as i64 - 1 - m))
            .collect();
        b.nest(format!("halo{s}"), &loops, |nb| {
            let mut value = nb.read_off(src, &vec![0i64; rank]);
            for d in 0..rank {
                for o in 1..=spec.halo {
                    for signed in [o, -o] {
                        let mut off = vec![0i64; rank];
                        off[d] = signed;
                        value = value + nb.read_off(src, &off) * 0.125;
                    }
                }
            }
            nb.assign_off(dst, &vec![0i64; rank], value);
        });
        src = dst;
    }
    b.finish()
}

proptest! {
    /// Replay ≡ interpreter on random grid dims × halo widths × machines.
    #[test]
    fn random_halo_stencils_bit_identical(
        spec in stencil_spec_strategy(),
        cfg in config_strategy(),
    ) {
        let program = build_halo_stencil(&spec);
        let sim = simulate(&program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let rep = replay::counts(&program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&rep.stats, &sim.stats, "spec {:?} cfg {:?}", &spec, &cfg);
        prop_assert_eq!(&rep.per_nest, &sim.per_nest);
        prop_assert_eq!(rep.network_messages, sim.network_messages);
        prop_assert_eq!(rep.network_hops, sim.network_hops);
        prop_assert_eq!(rep.max_link_load, sim.max_link_load);
    }

    /// Replay ≡ interpreter on random valid CSR structures: row_ptr is
    /// monotone by construction (Linear with step `deg`) and col_idx is
    /// in-bounds by construction (a permutation reduced modulo `cols`) —
    /// the representable CSR family, randomized over shape and content.
    #[test]
    fn random_csr_structures_bit_identical(
        rows in 2usize..48,
        cols in 2usize..64,
        deg in 1usize..6,
        seed in 0u64..1_000_000_000,
        cfg in config_strategy(),
    ) {
        let k = sapp::loops::spmv::build_csr_seeded(rows, cols, deg, seed);
        let sim = simulate(&k.program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let rep = replay::counts(&k.program, &cfg)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&rep.stats, &sim.stats, "{}x{} d{} seed {} cfg {:?}",
            rows, cols, deg, seed, &cfg);
        prop_assert_eq!(&rep.per_nest, &sim.per_nest);
        prop_assert_eq!(rep.network_messages, sim.network_messages);
        prop_assert_eq!(rep.network_hops, sim.network_hops);
        prop_assert_eq!(rep.max_link_load, sim.max_link_load);
    }
}
