//! Regression tests for the report pipeline's edge cases:
//!
//! * zero-read programs (e.g. write-only or pure-reinit phases) must
//!   report 0.0 remote % — never NaN — all the way from `Stats` through
//!   the oracles into CSV/JSON cells and `ResultSet` pivots;
//! * the hand-rolled `report::json` emitter must escape hostile kernel
//!   and nest labels per RFC 8259.

use sapp::core::exec::simulate;
use sapp::core::plan::ExperimentPlan;
use sapp::core::replay;
use sapp::core::report::{csv, fmt_pct, json};
use sapp::core::results::Column;
use sapp::core::{CountingOracle, FastCountingOracle, Oracle};
use sapp::ir::index::iv;
use sapp::ir::{Program, ProgramBuilder};
use sapp::machine::MachineConfig;

/// A program whose only nest performs writes but no reads, plus a reinit
/// round — total reads stay zero for the whole run.
fn write_only_program() -> Program {
    let mut b = ProgramBuilder::new("write-only");
    let x = b.output("X", &[96]);
    b.nest("fill", &[("k", 0, 95)], |nb| {
        nb.assign(x, [iv(0)], sapp::ir::Expr::LoopVar(0));
    });
    b.reinit(x);
    b.nest("refill", &[("k", 0, 95)], |nb| {
        nb.assign(x, [iv(0)], sapp::ir::Expr::LoopVar(0) * 2.0);
    });
    b.finish()
}

#[test]
fn zero_read_run_reports_zero_remote_pct_not_nan() {
    let p = write_only_program();
    let cfg = MachineConfig::new(4, 16);

    let sim = simulate(&p, &cfg).unwrap();
    assert_eq!(sim.stats.total_reads(), 0);
    assert_eq!(sim.remote_pct(), 0.0);
    assert!(!sim.remote_pct().is_nan());
    assert_eq!(sim.stats.cached_read_pct(), 0.0);
    // Per-nest stats are zero-read too and must behave the same.
    for (label, stats) in &sim.per_nest {
        assert_eq!(stats.remote_read_pct(), 0.0, "nest {label}");
        assert!(!stats.remote_read_pct().is_nan(), "nest {label}");
    }

    let rep = replay::counts(&p, &cfg).unwrap();
    assert_eq!(rep.remote_pct(), 0.0);
    assert!(!rep.remote_pct().is_nan());
}

#[test]
fn zero_read_records_render_cleanly_in_csv_and_json() {
    let p = write_only_program();
    let plan = ExperimentPlan::new().pes(&[1, 4]);
    for oracle in [
        Box::new(CountingOracle) as Box<dyn Oracle>,
        Box::new(FastCountingOracle::default()),
    ] {
        let results = plan.run(&p, oracle.as_ref()).unwrap();
        for r in results.records() {
            assert_eq!(r.remote_pct, 0.0, "{}", oracle.name());
            assert!(!r.remote_pct.is_nan());
            assert!(!r.cached_pct.is_nan());
            assert!(!r.write_balance.is_nan());
        }
        let cols = [Column::Pes, Column::RemotePct, Column::CachedPct];
        let rows = results.rows(&cols);
        let rendered_csv = csv(&Column::headers(&cols), &rows);
        let rendered_json = json(&Column::headers(&cols), &rows);
        for out in [&rendered_csv, &rendered_json] {
            assert!(!out.contains("NaN"), "NaN leaked into output: {out}");
            assert!(out.contains("0.00%"), "missing zero percentage: {out}");
        }
        // Pivots over a zero-read set stay finite as well.
        let series = results.series(
            |_| "all".to_string(),
            |r| r.cfg.n_pes as f64,
            |r| r.remote_pct,
        );
        assert!(series[0].points.iter().all(|(_, y)| y.is_finite()));
    }
}

#[test]
fn fmt_pct_of_zero_is_stable() {
    assert_eq!(fmt_pct(0.0), "0.00%");
}

#[test]
fn json_escapes_hostile_kernel_and_nest_labels() {
    // A label exercising every escape class of RFC 8259 §7: quote,
    // backslash, the two-character escapes, and a raw control byte.
    let hostile = "K\"1\\evil\n\r\t\u{1}end";
    let out = json(
        &["kernel", "remote_pct"],
        &[vec![hostile.to_string(), "1.5".into()]],
    );
    assert!(
        out.contains(r#""K\"1\\evil\n\r\t\u0001end""#),
        "label not escaped per RFC 8259: {out}"
    );
    // No raw control characters or unescaped quotes survive.
    assert!(out.chars().all(|c| c >= ' ' || c == '\n'));

    // Hostile headers are escaped the same way.
    let out = json(&["a\"b\\c"], &[vec!["1".into()]]);
    assert!(out.contains(r#""a\"b\\c""#), "{out}");
}

#[test]
fn json_end_to_end_with_a_hostile_kernel_axis_label() {
    // Kernel labels flow verbatim from the plan into report cells; a
    // hostile code must come out escaped, not break the document.
    let p = write_only_program();
    let hostile = "K\"12\\x\n";
    let plan = ExperimentPlan::new().kernels(&[hostile]).pes(&[2]);
    let results = plan.run_kernels(&[(hostile, &p)], &CountingOracle).unwrap();
    let cols = [Column::Kernel, Column::RemotePct];
    let out = json(&Column::headers(&cols), &results.rows(&cols));
    assert!(out.contains(r#""K\"12\\x\n""#), "{out}");
    // Raw newline inside a string literal would be invalid JSON; the only
    // newlines left are the pretty-printer's own, so every line must close
    // its quotes (counting backslash escapes).
    for line in out.lines() {
        let (mut esc, mut quotes) = (false, 0usize);
        for c in line.chars() {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                quotes += 1;
            }
        }
        assert_eq!(quotes % 2, 0, "unbalanced quotes in line: {line}");
    }
}

/// A tiny kernel both backends support (LRU cache, ideal network).
fn skewed_program() -> Program {
    let mut b = ProgramBuilder::new("skew");
    let y = b.input("Y", &[160], sapp::ir::InitPattern::Wavy);
    let x = b.output("X", &[128]);
    b.nest("s", &[("k", 0, 127)], |nb| {
        nb.assign(x, [iv(0)], nb.read(y, [iv(0).plus(17)]));
    });
    b.finish()
}

#[test]
fn mixed_oracle_pivots_distinguish_unmodeled_hops_from_zero() {
    use sapp::core::results::ResultSet;
    use sapp::core::StaticOracle;
    use sapp::runtime::ThreadOracle;

    let p = skewed_program();
    // Uncached grid so the static estimator accepts every point too.
    let plan = ExperimentPlan::new().pes(&[2, 4]).cache_flags(&[false]);
    let sim = plan.run(&p, &CountingOracle).unwrap();
    let real = plan.run(&p, &ThreadOracle).unwrap();
    let est = plan.run(&p, &StaticOracle).unwrap();

    // Counting and thread backends model the network: hops are measured
    // (Some, here 0 on the ideal topology — the thread workers price every
    // modeled send through the same link model). The static estimator has
    // no hop model: None.
    for r in sim.records().iter().chain(real.records()) {
        assert_eq!(r.hops, Some(0));
        assert_eq!(r.max_link_load, Some(0));
        assert!(r.hops_f64() == 0.0);
    }
    for r in est.records() {
        assert_eq!(r.hops, None);
        assert_eq!(r.max_link_load, None);
        assert!(r.hops_f64().is_nan(), "unmodeled hops pivot as NaN");
        assert!(r.max_link_load_f64().is_nan());
    }

    // One mixed set, as a cross-backend comparison table would build it.
    let mut records = sim.records().to_vec();
    records.extend(est.records().iter().cloned());
    let mixed = ResultSet::new(records);
    let cols = [
        Column::Pes,
        Column::Messages,
        Column::Hops,
        Column::MaxLinkLoad,
    ];
    let rows = mixed.rows(&cols);
    let c = csv(&Column::headers(&cols), &rows);
    let lines: Vec<&str> = c.lines().collect();
    assert_eq!(lines[0], "pes,messages,hops,max_link_load");
    // Simulator rows carry the measured zero; estimator rows leave the
    // cells blank — every row still has all four columns.
    assert_eq!(lines[1].matches(',').count(), 3);
    assert!(lines[1].ends_with(",0,0"), "sim row: {}", lines[1]);
    assert!(lines[3].ends_with(",,"), "estimator row: {}", lines[3]);

    // JSON: numbers where measured, empty strings (never a fake 0, never a
    // bare NaN) where not.
    let j = json(&Column::headers(&cols), &rows);
    assert!(j.contains("\"hops\": 0"));
    assert!(j.contains("\"hops\": \"\""));
    assert!(!j.contains("NaN"));
}
