//! Real-runtime parity for the **full** Livermore suite (ROADMAP item):
//! every kernel — including the K13/K14 gather/scatter forms whose
//! statement anchors go through index arrays — executes on real worker
//! threads via `ThreadOracle`, with
//!
//! * values matching the sequential reference interpreter, and
//! * access/message counts matching the counting simulator
//!   (`CountingOracle`, cross-checked against `FastCountingOracle`).
//!
//! Count parity is asserted at two levels:
//!
//! * **No cache** — every remote read is a fetch, so counts are independent
//!   of thread interleaving: the runtime must agree with the simulator
//!   *number for number on every kernel*.
//! * **With the paper's cache** — fetch contents depend on how far the
//!   producer got, so exact parity is only well-defined when everything a
//!   PE can fetch is a fully initialized input page. That property is
//!   derived per kernel from the IR (see `cache_exact`), and on that large
//!   subset (all gather/scatter kernels included) the cached counts must
//!   match exactly too; pipelined recurrences are bounded instead.

use sapp::core::oracle::{CountingOracle, FastCountingOracle, Oracle, OracleError};
use sapp::core::plan::{ExperimentPlan, RunConfig};
use sapp::ir::nest::Stmt;
use sapp::ir::program::ArrayInit;
use sapp::ir::{analysis, interpret, Program, ProgramResult};
use sapp::loops::{reduced_suite, suite};
use sapp::runtime::{execute, RuntimeConfig, ThreadOracle};

/// Can cached counts be compared exactly? True iff every array a PE might
/// *fetch* (any read whose address function differs from the statement
/// anchor's, every gather/scatter index array, and every read of an
/// indirect-anchored statement) is fully statically initialized and never
/// written or re-initialized — then every shipped page is complete and
/// timing cannot perturb cache state.
fn cache_exact(program: &Program) -> bool {
    let mut mutated = vec![false; program.arrays.len()];
    for phase in &program.phases {
        match phase {
            sapp::ir::program::Phase::Reinit(id) => mutated[id.0] = true,
            sapp::ir::program::Phase::Loop(nest) => {
                for id in nest.written_arrays() {
                    mutated[id.0] = true;
                }
            }
        }
    }
    let frozen_input = |id: sapp::ir::ArrayId| {
        matches!(program.array(id).init, ArrayInit::Full(_)) && !mutated[id.0]
    };
    for nest in program.nests() {
        let nvars = nest.loops.len();
        for stmt in &nest.body {
            let anchor = analysis::anchor_ref(stmt);
            let indirect_anchor = analysis::has_indirect_anchor(stmt);
            let anchor_form = anchor
                .filter(|_| !indirect_anchor)
                .and_then(|a| analysis::linear_address_form(program, a, nvars));
            // Index arrays are read by whoever executes the instance.
            let mut remote_capable: Vec<sapp::ir::ArrayId> = Vec::new();
            if let Some(aref) = anchor {
                for ix in &aref.indices {
                    if let sapp::ir::index::IndexExpr::Indirect { base, .. } = ix {
                        remote_capable.push(*base);
                    }
                }
            }
            for read in stmt.reads() {
                for ix in &read.indices {
                    if let sapp::ir::index::IndexExpr::Indirect { base, .. } = ix {
                        remote_capable.push(*base);
                    }
                }
                let always_local = !indirect_anchor
                    && !read.has_indirection()
                    && match (
                        &anchor_form,
                        analysis::linear_address_form(program, read, nvars),
                    ) {
                        (Some(w), Some(r)) => *w == r,
                        _ => false,
                    };
                if !always_local {
                    remote_capable.push(read.array);
                }
            }
            if let Stmt::Reduce { .. } = stmt {
                // The first read anchors the reduction; identical-form reads
                // are local to it, everything else may travel.
            }
            if !remote_capable.into_iter().all(frozen_input) {
                return false;
            }
        }
    }
    true
}

fn thread_cfg(cache_elems: usize) -> RunConfig {
    RunConfig {
        n_pes: 4,
        page_size: 32,
        cache_elems,
        ..RunConfig::default()
    }
}

fn assert_counts_match(code: &str, sim: &sapp::core::RunRecord, real: &sapp::core::RunRecord) {
    assert_eq!(sim.writes, real.writes, "{code}: writes");
    assert_eq!(sim.total_reads, real.total_reads, "{code}: total reads");
    assert_eq!(sim.local_reads, real.local_reads, "{code}: local reads");
    assert_eq!(sim.cached_reads, real.cached_reads, "{code}: cached reads");
    assert_eq!(sim.remote_reads, real.remote_reads, "{code}: remote reads");
    assert_eq!(sim.messages, real.messages, "{code}: messages");
    assert_eq!(sim.remote_pct, real.remote_pct, "{code}: remote %");
}

#[test]
fn full_suite_counts_match_simulator_without_cache() {
    let cfg = thread_cfg(0);
    for k in reduced_suite() {
        let sim = CountingOracle.measure(&k.program, &cfg).unwrap();
        let fast = FastCountingOracle::default()
            .measure(&k.program, &cfg)
            .unwrap();
        let real = ThreadOracle
            .measure(&k.program, &cfg)
            .unwrap_or_else(|e| panic!("{}: thread oracle failed: {e}", k.code));
        assert_counts_match(k.code, &sim, &real);
        assert_counts_match(k.code, &fast, &real);
        // Locality certification: the workers price their modeled traffic
        // through the same link model the simulator routes with, so hop and
        // link-load figures are real measurements and must agree exactly.
        assert_eq!(real.hops, sim.hops, "{}: hops", k.code);
        assert_eq!(real.max_link_load, sim.max_link_load, "{}", k.code);
        assert!(real.hops.is_some(), "{}: threads measure hops now", k.code);
    }
}

#[test]
fn full_suite_locality_certifies_on_routed_topologies() {
    // The affine registry under a routed topology × a tiled placement: the
    // thread engine's Some(hops)/Some(max_link_load) must equal the
    // counting simulator's locality accounting event for event.
    for (network, partition) in [
        (
            sapp::machine::NetworkTopology::Mesh2D,
            sapp::machine::PartitionScheme::Modulo,
        ),
        (
            sapp::machine::NetworkTopology::Torus2D,
            sapp::machine::PartitionScheme::Tile2D {
                tile_rows: 8,
                tile_cols: 8,
            },
        ),
        (
            sapp::machine::NetworkTopology::Bus,
            sapp::machine::PartitionScheme::RowBand,
        ),
    ] {
        let cfg = RunConfig {
            network,
            partition,
            ..thread_cfg(0)
        };
        for k in reduced_suite() {
            let sim = CountingOracle.measure(&k.program, &cfg).unwrap();
            let real = ThreadOracle
                .measure(&k.program, &cfg)
                .unwrap_or_else(|e| panic!("{}: thread oracle failed: {e}", k.code));
            assert_counts_match(k.code, &sim, &real);
            assert_eq!(real.hops, sim.hops, "{}: {network:?} hops", k.code);
            assert_eq!(
                real.max_link_load, sim.max_link_load,
                "{}: {network:?} link load",
                k.code
            );
        }
    }
}

#[test]
fn full_suite_cached_counts_match_simulator_on_static_read_kernels() {
    let cfg = thread_cfg(256);
    let mut exact = Vec::new();
    let mut bounded = Vec::new();
    for k in reduced_suite() {
        if cache_exact(&k.program) {
            exact.push(k);
        } else {
            bounded.push(k);
        }
    }
    // The derived exact set must cover the paper's input-only kernels and
    // every gather/scatter form — that is the point of this PR.
    for code in ["K1", "K7", "K12", "K13", "K13S", "K14", "K14S"] {
        assert!(
            exact.iter().any(|k| k.code == code),
            "{code} should be cache-exact"
        );
    }
    // The scale workloads legitimately land in the bounded set: multi-sweep
    // stencils re-read produced grids and SpMV chains its running sum, so
    // fetch timing can perturb cache contents (1-sweep stencils are exact —
    // covered by `one_sweep_stencils_are_cache_exact`).
    for code in ["ST5", "ST9", "ST7", "SPMV", "SPMVD"] {
        assert!(
            bounded.iter().any(|k| k.code == code),
            "{code} should be cache-bounded"
        );
    }
    for k in &exact {
        let sim = CountingOracle.measure(&k.program, &cfg).unwrap();
        let real = ThreadOracle
            .measure(&k.program, &cfg)
            .unwrap_or_else(|e| panic!("{}: thread oracle failed: {e}", k.code));
        assert_counts_match(k.code, &sim, &real);
    }
    // Pipelined recurrences: fetch timing can only add refetches, so the
    // cached runtime lies between the cached and uncached simulator counts.
    for k in &bounded {
        let ideal = CountingOracle.measure(&k.program, &cfg).unwrap();
        let worst = CountingOracle.measure(&k.program, &thread_cfg(0)).unwrap();
        let real = ThreadOracle.measure(&k.program, &cfg).unwrap();
        assert_eq!(ideal.writes, real.writes, "{}: writes", k.code);
        assert_eq!(ideal.total_reads, real.total_reads, "{}: reads", k.code);
        assert!(
            real.remote_reads >= ideal.remote_reads
                && real.remote_reads <= worst.remote_reads.max(ideal.remote_reads),
            "{}: runtime {} outside [{}, {}]",
            k.code,
            real.remote_reads,
            ideal.remote_reads,
            worst.remote_reads
        );
    }
}

#[test]
fn full_suite_values_match_reference_on_threads() {
    for k in reduced_suite() {
        let golden = interpret(&k.program).expect("reference runs");
        let rep = execute(&k.program, &RuntimeConfig::paper(4, 32))
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
        let got = ProgramResult {
            arrays: rep.arrays,
            scalars: rep.scalars,
            writes: 0,
            reads: 0,
        };
        golden
            .assert_matches(&got, 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
    }
}

#[test]
fn official_suite_runs_on_thread_oracle() {
    // The registry itself (official sizes) through the oracle: every kernel
    // measures without a panic or an Unsupported error, and the headline
    // counters agree with the simulator.
    let cfg = thread_cfg(0);
    for k in suite() {
        if ["K21", "K6"].contains(&k.code) {
            continue; // heavy at official size in debug; covered reduced above
        }
        let sim = CountingOracle.measure(&k.program, &cfg).unwrap();
        let real = ThreadOracle
            .measure(&k.program, &cfg)
            .unwrap_or_else(|e| panic!("{}: thread oracle failed: {e}", k.code));
        assert_counts_match(k.code, &sim, &real);
    }
}

#[test]
fn one_sweep_stencils_are_cache_exact() {
    // A single sweep reads only the fully initialized input grid, so the
    // static-read analysis must classify it exact — and the cached thread
    // counts must then match the simulator number for number.
    let cfg = thread_cfg(256);
    for k in [
        sapp::loops::stencil::build_jacobi5(18, 14, 1),
        sapp::loops::stencil::build_ninepoint(14, 12, 1),
        sapp::loops::stencil::build_heat7(8, 7, 6, 1),
    ] {
        assert!(cache_exact(&k.program), "{}: should be exact", k.code);
        let sim = CountingOracle.measure(&k.program, &cfg).unwrap();
        let real = ThreadOracle
            .measure(&k.program, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
        assert_counts_match(k.code, &sim, &real);
    }
}

#[test]
fn prefix_spmv_resolves_over_indirect_fetch() {
    // SPMVD's result vector scatters through a Prefix-initialized row
    // permutation: no static mirror exists, so the workers must resolve
    // the anchor over IndirectFetch/IndirectReply — with the resolution
    // traffic tallied separately so the modeled counts still match the
    // simulator exactly (the simulator's anchor peek is free).
    let k = sapp::loops::workload("SPMVD").unwrap().reduced();
    let rt = RuntimeConfig {
        cache_elems: 0,
        ..RuntimeConfig::paper(4, 32)
    };
    let rep = execute(&k.program, &rt).expect("SPMVD runs on threads");
    assert!(
        rep.resolve_messages > 0,
        "prefix-initialized anchors must resolve over the wire"
    );
    // SPMVD has no reductions and no reinit phases, so the only uncounted
    // wire traffic can be anchor resolution — broadcast/sync tallies must
    // be zero (a miscategorized message would land here).
    assert_eq!(rep.broadcast_messages, 0, "no scalars to broadcast");
    assert_eq!(rep.sync_messages, 0, "no reinit barriers to harden");
    // And the modeled count (wire minus resolution) must equal the
    // simulator's message model exactly — the independent side of the
    // ledger: the simulator never sees resolution traffic at all.
    let cfg = thread_cfg(0);
    let sim = CountingOracle.measure(&k.program, &cfg).unwrap();
    let real = ThreadOracle.measure(&k.program, &cfg).unwrap();
    assert_counts_match("SPMVD", &sim, &real);
    assert_eq!(
        rep.modeled_messages(),
        sim.messages,
        "modeled thread messages must match the simulator's model"
    );
}

#[test]
fn stencil_sweeps_through_plans_on_threads() {
    // The same plan, two backends, across PE counts — on the 3-D stencil
    // (multi-dim affine anchors with reinit ping-pong between sweeps).
    let k = sapp::loops::stencil::build_heat7(8, 8, 6, 3);
    let plan = ExperimentPlan::new().base(thread_cfg(0)).pes(&[1, 2, 4, 6]);
    let sim = plan.run(&k.program, &CountingOracle).unwrap();
    let real = plan.run(&k.program, &ThreadOracle).unwrap();
    assert_eq!(sim.len(), real.len());
    for (s, r) in sim.records().iter().zip(real.records()) {
        assert_eq!(s.cfg, r.cfg);
        assert_counts_match("ST7", s, r);
    }
}

#[test]
fn scatter_kernels_sweep_through_plans_on_threads() {
    // The same plan, two backends, across PE counts — on a kernel with an
    // indirect statement anchor.
    let k = sapp::loops::k14_pic1d::build_scatter(150);
    let plan = ExperimentPlan::new().base(thread_cfg(0)).pes(&[1, 2, 4, 6]);
    let sim = plan.run(&k.program, &CountingOracle).unwrap();
    let real = plan.run(&k.program, &ThreadOracle).unwrap();
    assert_eq!(sim.len(), real.len());
    for (s, r) in sim.records().iter().zip(real.records()) {
        assert_eq!(s.cfg, r.cfg);
        assert_counts_match("K14S", s, r);
    }
}

#[test]
fn genuinely_dynamic_anchors_fail_soft_through_the_oracle() {
    use sapp::ir::{InitPattern, ProgramBuilder};
    // P is produced by the same nest that anchors through it: the one case
    // the protocol cannot order, reported as a typed Unsupported error —
    // not a panic, not a hang.
    let mut b = ProgramBuilder::new("dynamic");
    let y = b.input("Y", &[64], InitPattern::Wavy);
    let p = b.output("P", &[64]);
    let x = b.output("X", &[64]);
    b.nest("bad", &[("k", 0, 63)], |nb| {
        nb.assign(p, [sapp::ir::index::iv(0)], sapp::ir::Expr::LoopVar(0));
        nb.assign_indirect(
            x,
            p,
            sapp::ir::index::iv(0),
            nb.read(y, [sapp::ir::index::iv(0)]),
        );
    });
    let prog = b.finish();
    assert!(matches!(
        ThreadOracle.measure(&prog, &thread_cfg(0)),
        Err(OracleError::Unsupported(_))
    ));
    // The simulator still measures it (omniscient peek), so the grid point
    // is lost only on the thread backend — exactly the soft-failure split.
    assert!(CountingOracle.measure(&prog, &thread_cfg(0)).is_ok());
}
