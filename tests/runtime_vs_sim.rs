//! Real threads vs the counting simulator: values must match the reference
//! exactly; access statistics must correspond (identically for kernels over
//! fully initialized inputs, conservatively for pipelined recurrences where
//! fetch timing shifts partial-page states).

use proptest::prelude::*;

use sapp::core::simulate;
use sapp::ir::index::iv;
use sapp::ir::{interpret, InitPattern, Program, ProgramBuilder, ProgramResult};
use sapp::loops::suite;
use sapp::machine::MachineConfig;
use sapp::runtime::{execute, RuntimeConfig};

fn runtime_result(rep: &sapp::runtime::RuntimeReport) -> ProgramResult {
    ProgramResult {
        arrays: rep.arrays.clone(),
        scalars: rep.scalars.clone(),
        writes: 0,
        reads: 0,
    }
}

#[test]
fn threaded_values_match_reference_for_whole_suite() {
    // K21 at full size is heavy for the threaded engine in debug builds;
    // the suite minus the two heaviest kernels runs in seconds.
    for k in suite() {
        if ["K21", "K6"].contains(&k.code) {
            continue; // covered at reduced size below
        }
        let golden = interpret(&k.program).expect("reference");
        let rep = execute(&k.program, &RuntimeConfig::paper(4, 32))
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
        golden
            .assert_matches(&runtime_result(&rep), 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
    }
}

#[test]
fn threaded_values_match_for_reduced_random_kernels() {
    for k in [
        sapp::loops::k06_glre::build(24),
        sapp::loops::k21_matmul::build(16),
    ] {
        let golden = interpret(&k.program).expect("reference");
        let rep = execute(&k.program, &RuntimeConfig::paper(4, 16))
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
        golden
            .assert_matches(&runtime_result(&rep), 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
    }
}

#[test]
fn stats_match_simulator_exactly_on_input_only_kernels() {
    // K1/K7/K12 read only fully initialized arrays: every fetched page is
    // complete, so thread scheduling cannot perturb the counts — the
    // runtime must agree with the simulator number for number.
    for code in ["K1", "K7", "K12"] {
        let k = suite().into_iter().find(|k| k.code == code).unwrap();
        let cfg = MachineConfig::new(4, 32);
        let sim = simulate(&k.program, &cfg).expect("sim");
        let run = execute(&k.program, &RuntimeConfig::from_machine(&cfg)).expect("runtime");
        assert_eq!(sim.stats.writes(), run.stats.writes(), "{code} writes");
        assert_eq!(
            sim.stats.total_reads(),
            run.stats.total_reads(),
            "{code} reads"
        );
        assert_eq!(
            sim.stats.remote_reads(),
            run.stats.remote_reads(),
            "{code} remote"
        );
        assert_eq!(
            sim.stats.cached_reads(),
            run.stats.cached_reads(),
            "{code} cached"
        );
        assert_eq!(run.messages, 2 * run.stats.page_fetches, "{code} messages");
    }
}

#[test]
fn stats_bound_simulator_on_pipelined_kernels() {
    // Recurrences (K5, K2) fetch pages of *produced* arrays whose fill
    // state depends on timing: the runtime may refetch partially filled
    // pages (§8), so its remote count is ≥ the paper-semantics simulator
    // and ≤ the count with caching disabled.
    for code in ["K5", "K2", "K11"] {
        let k = suite().into_iter().find(|k| k.code == code).unwrap();
        let cfg = MachineConfig::new(4, 32);
        let ideal = simulate(&k.program, &cfg)
            .expect("sim")
            .stats
            .remote_reads();
        let worst = simulate(&k.program, &MachineConfig::new(4, 32).with_cache_elems(0))
            .expect("sim")
            .stats
            .remote_reads();
        let run = execute(&k.program, &RuntimeConfig::from_machine(&cfg)).expect("runtime");
        let got = run.stats.remote_reads();
        assert!(
            got >= ideal && got <= worst.max(ideal),
            "{code}: runtime {got} outside [{ideal}, {worst}]"
        );
        assert_eq!(
            run.stats.total_reads(),
            simulate(&k.program, &cfg).unwrap().stats.total_reads()
        );
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let k = suite().into_iter().find(|k| k.code == "K18").unwrap();
    let golden = interpret(&k.program).expect("reference");
    for n in [1usize, 2, 3, 6, 8] {
        let rep = execute(&k.program, &RuntimeConfig::paper(n, 32)).expect("runtime");
        golden
            .assert_matches(&runtime_result(&rep), 1e-9)
            .unwrap_or_else(|e| panic!("{n} threads: {e}"));
    }
}

/// Regression for the reduction pre-pass / execution-loop ownership split:
/// both passes now call the same `stmt_owner` routine, so interleaving
/// round-robin-dealt (anchorless) statements with anchored ones in any
/// body order must keep participant sets, values and counts consistent.
#[test]
fn statement_order_perturbation_keeps_prepass_and_execution_in_sync() {
    let n = 160usize;
    // Three bodies with the same statements in different orders. The
    // anchorless reductions advance the round-robin counter *between* the
    // anchored statements, in a different pattern per ordering.
    let build = |order: usize| -> Program {
        let mut b = ProgramBuilder::new("perturb");
        let y = b.input("Y", &[n], InitPattern::Wavy);
        let x = b.output("X", &[n]);
        let s1 = b.scalar("s1");
        let s2 = b.scalar("s2");
        b.nest("mix", &[("k", 0, n as i64 - 1)], |nb| {
            let stmts: &mut [&mut dyn FnMut(&mut sapp::ir::builder::NestBuilder); 3] = &mut [
                &mut |nb| nb.reduce(s1, sapp::ir::ReduceOp::Sum, sapp::ir::Expr::LoopVar(0)),
                &mut |nb| {
                    let v = nb.read(y, [iv(0)]) * 2.0;
                    nb.assign(x, [iv(0)], v);
                },
                &mut |nb| {
                    nb.reduce(
                        s2,
                        sapp::ir::ReduceOp::Max,
                        sapp::ir::Expr::LoopVar(0) * 3.0,
                    )
                },
            ];
            let perm = match order {
                0 => [0, 1, 2],
                1 => [1, 0, 2],
                _ => [2, 1, 0],
            };
            for i in perm {
                stmts[i](nb);
            }
        });
        b.finish()
    };
    for order in 0..3 {
        let p = build(order);
        let golden = interpret(&p).expect("reference");
        for n_pes in [1usize, 3, 4, 7] {
            let cfg = MachineConfig::new(n_pes, 16);
            let sim = simulate(&p, &cfg).expect("sim");
            let rep = execute(&p, &RuntimeConfig::from_machine(&cfg))
                .unwrap_or_else(|e| panic!("order {order}, {n_pes} PEs: {e}"));
            golden
                .assert_matches(&runtime_result(&rep), 1e-9)
                .unwrap_or_else(|e| panic!("order {order}, {n_pes} PEs: {e}"));
            // Anchorless instances are dealt identically, so the reduction
            // partial traffic must match the simulator's model exactly.
            assert_eq!(
                rep.stats.reduction_messages, sim.stats.reduction_messages,
                "order {order}, {n_pes} PEs: partial-collection messages"
            );
            assert_eq!(rep.stats.writes(), sim.stats.writes());
        }
    }
}

/// Satellite: thread-runtime counts equal the simulator's on *random*
/// statically-initialized index data — permutations (scatter-legal),
/// bounded permutations with duplicates, and boundary-clamped lookups —
/// for both a gather nest and a scatter nest. Everything fetched is a
/// fully initialized input page, so the cached counts are exact too.
fn gather_scatter_program(n: usize, limit: usize, seed: u64, scatter: bool) -> Program {
    let mut b = ProgramBuilder::new("prop-indirect");
    let d = b.input("D", &[n], InitPattern::Wavy);
    // Gather index data may repeat and clamps to `limit`; scatter index
    // data must be a permutation for single assignment.
    let idx = if scatter {
        b.input("IDX", &[n], InitPattern::Permutation { seed })
    } else {
        b.input("IDX", &[n], InitPattern::BoundedPermutation { seed, limit })
    };
    let x = b.output("X", &[n]);
    b.nest("g", &[("k", 0, n as i64 - 1)], |nb| {
        if scatter {
            nb.assign_indirect(x, idx, iv(0), nb.read(d, [iv(0)]) + 1.0);
        } else {
            nb.assign(x, [iv(0)], nb.read_indirect(d, idx, iv(0)) + 1.0);
        }
    });
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_index_arrays_match_simulator_counts(
        n in 48usize..220,
        limit_frac in 1usize..100,
        seed in 0u64..10_000,
        n_pes in 1usize..7,
        page in proptest::sample::select(vec![8usize, 16, 32]),
        cache in proptest::sample::select(vec![0usize, 128, 256]),
        scatter in proptest::bool::ANY,
    ) {
        // Boundary clamp: limits from 1 (every lookup hits D(0)) to n.
        let limit = (n * limit_frac / 100).max(1);
        let p = gather_scatter_program(n, limit, seed, scatter);
        let cfg = MachineConfig::new(n_pes, page).with_cache_elems(cache);
        let sim = simulate(&p, &cfg).expect("sim");
        let rep = execute(&p, &RuntimeConfig::from_machine(&cfg)).expect("runtime");
        prop_assert_eq!(rep.stats.writes(), sim.stats.writes());
        prop_assert_eq!(rep.stats.total_reads(), sim.stats.total_reads());
        prop_assert_eq!(rep.stats.local_reads(), sim.stats.local_reads());
        prop_assert_eq!(rep.stats.cached_reads(), sim.stats.cached_reads());
        prop_assert_eq!(rep.stats.remote_reads(), sim.stats.remote_reads());
        prop_assert_eq!(rep.stats.page_fetches, sim.stats.page_fetches);
        // Static index data resolves from the mirror: zero resolution
        // traffic, and the modeled messages equal the simulator's.
        prop_assert_eq!(rep.resolve_messages, 0);
        prop_assert_eq!(rep.modeled_messages(), sim.network_messages);
        // Values still match the reference.
        let golden = interpret(&p).expect("reference");
        golden
            .assert_matches(&runtime_result(&rep), 1e-9)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
    }
}
