//! Real threads vs the counting simulator: values must match the reference
//! exactly; access statistics must correspond (identically for kernels over
//! fully initialized inputs, conservatively for pipelined recurrences where
//! fetch timing shifts partial-page states).

use sapp::core::simulate;
use sapp::ir::{interpret, ProgramResult};
use sapp::loops::suite;
use sapp::machine::MachineConfig;
use sapp::runtime::{execute, RuntimeConfig};

fn runtime_result(rep: &sapp::runtime::RuntimeReport) -> ProgramResult {
    ProgramResult {
        arrays: rep.arrays.clone(),
        scalars: rep.scalars.clone(),
        writes: 0,
        reads: 0,
    }
}

#[test]
fn threaded_values_match_reference_for_whole_suite() {
    // K21 at full size is heavy for the threaded engine in debug builds;
    // the suite minus the two heaviest kernels runs in seconds.
    for k in suite() {
        if ["K21", "K6"].contains(&k.code) {
            continue; // covered at reduced size below
        }
        let golden = interpret(&k.program).expect("reference");
        let rep = execute(&k.program, &RuntimeConfig::paper(4, 32))
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
        golden
            .assert_matches(&runtime_result(&rep), 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
    }
}

#[test]
fn threaded_values_match_for_reduced_random_kernels() {
    for k in [
        sapp::loops::k06_glre::build(24),
        sapp::loops::k21_matmul::build(16),
    ] {
        let golden = interpret(&k.program).expect("reference");
        let rep = execute(&k.program, &RuntimeConfig::paper(4, 16))
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
        golden
            .assert_matches(&runtime_result(&rep), 1e-9)
            .unwrap_or_else(|e| panic!("{}: {e}", k.code));
    }
}

#[test]
fn stats_match_simulator_exactly_on_input_only_kernels() {
    // K1/K7/K12 read only fully initialized arrays: every fetched page is
    // complete, so thread scheduling cannot perturb the counts — the
    // runtime must agree with the simulator number for number.
    for code in ["K1", "K7", "K12"] {
        let k = suite().into_iter().find(|k| k.code == code).unwrap();
        let cfg = MachineConfig::new(4, 32);
        let sim = simulate(&k.program, &cfg).expect("sim");
        let run = execute(&k.program, &RuntimeConfig::from_machine(&cfg)).expect("runtime");
        assert_eq!(sim.stats.writes(), run.stats.writes(), "{code} writes");
        assert_eq!(
            sim.stats.total_reads(),
            run.stats.total_reads(),
            "{code} reads"
        );
        assert_eq!(
            sim.stats.remote_reads(),
            run.stats.remote_reads(),
            "{code} remote"
        );
        assert_eq!(
            sim.stats.cached_reads(),
            run.stats.cached_reads(),
            "{code} cached"
        );
        assert_eq!(run.messages, 2 * run.stats.page_fetches, "{code} messages");
    }
}

#[test]
fn stats_bound_simulator_on_pipelined_kernels() {
    // Recurrences (K5, K2) fetch pages of *produced* arrays whose fill
    // state depends on timing: the runtime may refetch partially filled
    // pages (§8), so its remote count is ≥ the paper-semantics simulator
    // and ≤ the count with caching disabled.
    for code in ["K5", "K2", "K11"] {
        let k = suite().into_iter().find(|k| k.code == code).unwrap();
        let cfg = MachineConfig::new(4, 32);
        let ideal = simulate(&k.program, &cfg)
            .expect("sim")
            .stats
            .remote_reads();
        let worst = simulate(&k.program, &MachineConfig::new(4, 32).with_cache_elems(0))
            .expect("sim")
            .stats
            .remote_reads();
        let run = execute(&k.program, &RuntimeConfig::from_machine(&cfg)).expect("runtime");
        let got = run.stats.remote_reads();
        assert!(
            got >= ideal && got <= worst.max(ideal),
            "{code}: runtime {got} outside [{ideal}, {worst}]"
        );
        assert_eq!(
            run.stats.total_reads(),
            simulate(&k.program, &cfg).unwrap().stats.total_reads()
        );
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let k = suite().into_iter().find(|k| k.code == "K18").unwrap();
    let golden = interpret(&k.program).expect("reference");
    for n in [1usize, 2, 3, 6, 8] {
        let rep = execute(&k.program, &RuntimeConfig::paper(n, 32)).expect("runtime");
        golden
            .assert_matches(&runtime_result(&rep), 1e-9)
            .unwrap_or_else(|e| panic!("{n} threads: {e}"));
    }
}
