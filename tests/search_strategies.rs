//! Certification of the guided search strategies
//! (`sapp::core::search::strategy`) against exhaustion:
//!
//! 1. **Guided ≡ exhaustive** — on every space where exhaustion is still
//!    feasible (the full affine registry × all five scheme families ×
//!    pages {8, 32, 256}), `anneal` and `propagate` with the default
//!    budget return a winner within 0 bits of `search_exhaustive_with`:
//!    scheme, page size, score bits and the messages tie-break all match
//!    exactly.
//! 2. **Determinism** — same `--seed` ⇒ bit-identical winner and an
//!    identical evaluation trace, proptested across seeds and budgets on
//!    a space wide enough that the annealer really wanders.
//! 3. **Memo cache** — a second identical query is answered entirely
//!    from the cache: the same `RunRecord` (whole-report equality), zero
//!    new oracle calls, hit/miss counters asserted; and cache keys are
//!    collide-free across the registry and under program relabeling
//!    (proptest over registry pairs).
//! 4. **Space hoisting** — one search invocation materializes its
//!    candidate space exactly once, however many kernels it fans out
//!    over (the regression test for the per-kernel rebuild fix).

use std::sync::OnceLock;

use proptest::prelude::*;

use sapp::core::search::strategy::{
    program_fingerprint, Searcher, Strategy, StrategyOracle, StrategyParams,
};
use sapp::core::search::{search_exhaustive_with, Objective, SearchSpace};
use sapp::lint::{self, EstimateError};
use sapp::loops::{reduced_suite, Kernel};
use sapp::machine::{MachineConfig, NetworkTopology, PartitionScheme};

/// The registry at reduced sizes, restricted to the statically affine
/// kernels (the ones the estimator accepts — same filter the estimator
/// certification uses). Guided-vs-exhaustive equality is certified on
/// these; indirect kernels exercise the replay fallback elsewhere.
fn affine_registry() -> &'static Vec<Kernel> {
    static CELL: OnceLock<Vec<Kernel>> = OnceLock::new();
    CELL.get_or_init(|| {
        reduced_suite()
            .into_iter()
            .filter(|k| {
                let cfg = MachineConfig::new(4, 32).with_cache_elems(0);
                !matches!(
                    lint::estimate(&k.program, &cfg),
                    Err(EstimateError::Indirect { .. })
                )
            })
            .collect()
    })
}

/// The feasible exhaustion space of the certification sweep: all five
/// scheme families crossed with pages {8, 32, 256}, uncached so the
/// zero-execution estimator arm of the hybrid oracle answers the affine
/// points. 15 candidates — comfortably under the default budget, so the
/// guided strategies must cover it completely.
fn certification_space() -> SearchSpace {
    SearchSpace {
        schemes: vec![
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 2 },
            PartitionScheme::RowBand,
            PartitionScheme::Tile2D {
                tile_rows: 16,
                tile_cols: 16,
            },
        ],
        page_sizes: vec![8, 32, 256],
        cache_elems: 0,
        ..SearchSpace::default()
    }
}

/// A space wider than the default guided budget (7 schemes × 6 pages ×
/// 2 topologies = 84 candidates), so a small-budget annealer genuinely
/// wanders instead of degrading to the full sweep.
fn wide_space() -> SearchSpace {
    SearchSpace {
        networks: vec![NetworkTopology::Ideal, NetworkTopology::Mesh2D],
        cache_elems: 0,
        ..SearchSpace::default()
    }
}

fn params(strategy: Strategy) -> StrategyParams {
    StrategyParams {
        strategy,
        ..StrategyParams::default()
    }
}

#[test]
fn guided_strategies_match_exhaustive_bit_exactly_on_feasible_spaces() {
    let space = certification_space();
    let mut certified = 0usize;
    for k in affine_registry() {
        let exhaustive = search_exhaustive_with(
            &k.program,
            &space,
            &StrategyOracle::default(),
            Objective::default(),
        )
        .unwrap_or_else(|e| panic!("{}: exhaustive baseline failed: {e}", k.code));
        for strategy in [Strategy::Anneal, Strategy::Propagate] {
            let searcher =
                Searcher::new(&space, Box::<StrategyOracle>::default(), params(strategy)).unwrap();
            let rep = searcher
                .search(&k.program)
                .unwrap_or_else(|e| panic!("{}: {} failed: {e}", k.code, strategy.name()));
            // Exact tie-break match: scheme, page, score bits, messages.
            assert_eq!(
                rep.best.scheme,
                exhaustive.scheme,
                "{} {}: scheme diverged from exhaustive",
                k.code,
                strategy.name()
            );
            assert_eq!(
                rep.best.page_size,
                exhaustive.page_size,
                "{} {}: page size diverged",
                k.code,
                strategy.name()
            );
            assert_eq!(
                rep.best.score.to_bits(),
                exhaustive.score.to_bits(),
                "{} {}: score not within 0 bits",
                k.code,
                strategy.name()
            );
            assert_eq!(
                rep.best.messages,
                exhaustive.messages,
                "{} {}: messages tie-break diverged",
                k.code,
                strategy.name()
            );
            // Full coverage is what makes the exactness a theorem, not
            // luck: every candidate was measured or statically pruned.
            assert_eq!(
                rep.best.evaluated + rep.best.pruned + unsupported_count(&rep),
                rep.space_size,
                "{} {}: incomplete coverage",
                k.code,
                strategy.name()
            );
            certified += 1;
        }
    }
    assert!(
        certified >= 2 * 10,
        "affine registry unexpectedly small: {certified} certifications"
    );
}

/// Touched-but-unsupported candidates (traced, neither evaluated nor
/// pruned).
fn unsupported_count(rep: &sapp::core::SearchReport) -> usize {
    rep.trace.len() - rep.best.evaluated
}

#[test]
fn memo_cache_answers_second_query_with_zero_new_oracle_calls() {
    let k = &affine_registry()[0];
    let searcher = Searcher::new(
        &wide_space(),
        Box::<StrategyOracle>::default(),
        StrategyParams {
            strategy: Strategy::Anneal,
            budget: 24,
            ..StrategyParams::default()
        },
    )
    .unwrap();
    let first = searcher.search(&k.program).unwrap();
    assert!(first.oracle_evals > 0, "first query must pay for something");
    assert_eq!(first.cache_hits, 0, "fresh cache cannot hit");
    let (hits_before, misses_before) = (searcher.cache_hits(), searcher.cache_misses());
    assert_eq!(misses_before, first.oracle_evals as u64);

    let second = searcher.search(&k.program).unwrap();
    // Identical result — same RunRecord bit for bit, same trace — and
    // the oracle was never consulted again.
    assert_eq!(first.best, second.best);
    assert_eq!(first.record, second.record);
    assert_eq!(first.trace, second.trace);
    assert_eq!(second.oracle_evals, 0, "second query paid oracle calls");
    assert_eq!(second.cache_hits, first.trace.len());
    assert_eq!(
        searcher.cache_misses(),
        misses_before,
        "inner oracle was invoked again"
    );
    assert_eq!(
        searcher.cache_hits(),
        hits_before + second.cache_hits as u64
    );
}

#[test]
fn space_is_materialized_exactly_once_per_invocation() {
    let searcher = Searcher::new(
        &certification_space(),
        Box::<StrategyOracle>::default(),
        params(Strategy::Exhaustive),
    )
    .unwrap();
    // Fan several kernels out over the same invocation, like the CLI.
    for k in affine_registry().iter().take(3) {
        searcher.search(&k.program).unwrap();
    }
    assert_eq!(
        searcher.space_builds(),
        1,
        "candidate space must be built once per invocation, not per kernel"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ bit-identical winner *and* identical evaluation trace,
    /// whatever the seed and however tight the budget.
    #[test]
    fn same_seed_gives_bit_identical_winner_and_trace(
        seed in 0u64..u64::MAX,
        budget in 4usize..=20,
    ) {
        let k = &affine_registry()[0];
        let space = wide_space();
        let p = StrategyParams {
            strategy: Strategy::Anneal,
            seed,
            budget,
            ..StrategyParams::default()
        };
        let run = || {
            Searcher::new(&space, Box::<StrategyOracle>::default(), p)
                .unwrap()
                .search(&k.program)
                .unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
        prop_assert_eq!(&a.record, &b.record);
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(a.oracle_evals, b.oracle_evals);
        prop_assert!(a.oracle_evals <= budget, "budget overrun: {}", a.oracle_evals);
    }

    /// Memo-cache keys never collide across registry programs, and
    /// relabeling a program (renaming arrays or the program itself)
    /// always changes its key — a relabeled program can never replay
    /// another program's cached records.
    #[test]
    fn fingerprints_are_collide_free_under_relabeling(
        i in 0usize..26,
        j in 0usize..26,
    ) {
        let suite = reduced_suite();
        let i = i % suite.len();
        let j = j % suite.len();
        let (fi, fj) = (
            program_fingerprint(&suite[i].program),
            program_fingerprint(&suite[j].program),
        );
        prop_assert_eq!(fi == fj, i == j, "{} vs {}", suite[i].code, suite[j].code);

        let mut relabeled = suite[i].program.clone();
        relabeled.name.push('\'');
        for a in &mut relabeled.arrays {
            a.name.push('_');
        }
        let fr = program_fingerprint(&relabeled);
        for k in &suite {
            prop_assert!(
                fr != program_fingerprint(&k.program),
                "relabeled {} aliases {}",
                suite[i].code,
                k.code
            );
        }
    }
}
