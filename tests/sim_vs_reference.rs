//! Functional equivalence: for every Livermore kernel and a grid of machine
//! configurations, the distributed execution produces bit-identical array
//! contents (and tolerance-equal reductions) to the sequential reference.

use sapp::core::verify_against_reference;
use sapp::loops::{k14_pic1d, k18_hydro2d, suite};
use sapp::machine::{CachePolicy, MachineConfig, PartialPagePolicy, PartitionScheme};

#[test]
fn every_kernel_matches_reference_on_paper_machine() {
    for k in suite() {
        for n in [1usize, 4, 16] {
            verify_against_reference(&k.program, &MachineConfig::new(n, 32))
                .unwrap_or_else(|e| panic!("{} on {n} PEs: {e}", k.code));
        }
    }
}

#[test]
fn results_are_invariant_to_cache_configuration() {
    // Caching is purely an optimization: any cache size/policy yields the
    // same values.
    for k in suite()
        .into_iter()
        .filter(|k| ["K1", "K2", "K6", "K18"].contains(&k.code))
    {
        for cfg in [
            MachineConfig::new(8, 32).with_cache_elems(0),
            MachineConfig::new(8, 32).with_cache_elems(64),
            MachineConfig::new(8, 32).with_cache_policy(CachePolicy::Fifo),
            MachineConfig::new(8, 32).with_cache_policy(CachePolicy::Random { seed: 9 }),
            MachineConfig::new(8, 32).with_partial_pages(PartialPagePolicy::Refetch),
        ] {
            verify_against_reference(&k.program, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", k.code));
        }
    }
}

#[test]
fn results_are_invariant_to_partitioning_scheme() {
    for k in suite()
        .into_iter()
        .filter(|k| ["K1", "K5", "K18", "K21"].contains(&k.code))
    {
        for scheme in [
            PartitionScheme::Modulo,
            PartitionScheme::Block,
            PartitionScheme::BlockCyclic { block_pages: 3 },
        ] {
            let cfg = MachineConfig::new(8, 32).with_partition(scheme);
            verify_against_reference(&k.program, &cfg)
                .unwrap_or_else(|e| panic!("{} with {scheme:?}: {e}", k.code));
        }
    }
}

#[test]
fn results_are_invariant_to_page_size() {
    for k in suite()
        .into_iter()
        .filter(|k| ["K2", "K7", "K9"].contains(&k.code))
    {
        for ps in [8usize, 16, 64, 128] {
            verify_against_reference(&k.program, &MachineConfig::new(4, ps))
                .unwrap_or_else(|e| panic!("{} at ps {ps}: {e}", k.code));
        }
    }
}

#[test]
fn gather_kernel_and_multipass_kernel_match_reference() {
    let full = k14_pic1d::build_full(257);
    verify_against_reference(&full.program, &MachineConfig::new(8, 32)).unwrap();
    let multi = k18_hydro2d::build_with_passes(40, 3);
    verify_against_reference(&multi.program, &MachineConfig::new(8, 16)).unwrap();
}
