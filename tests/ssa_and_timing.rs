//! Integration tests for the SA conversion tool (§5) and the execution-time
//! extension (§9): conversion round-trips on generated reuse programs, and
//! the timing engine is deadlock-free with bounded speedups on the whole
//! Livermore suite.

use proptest::prelude::*;

use sapp::core::deferred::estimate_timing;
use sapp::core::simulate;
use sapp::ir::index::iv;
use sapp::ir::ssa::{convert_to_sa, verify_single_assignment, SsaMode};
use sapp::ir::{interpret, InitPattern, ProgramBuilder};
use sapp::loops::suite;
use sapp::machine::MachineConfig;

#[test]
fn timing_pass_is_deadlock_free_on_the_whole_suite() {
    for k in suite() {
        for n in [1usize, 4, 16] {
            let t = estimate_timing(&k.program, &MachineConfig::new(n, 32))
                .unwrap_or_else(|e| panic!("{} on {n} PEs: {e}", k.code));
            assert!(t.total_cycles > 0, "{}", k.code);
            assert!(t.instances > 0, "{}", k.code);
        }
    }
}

#[test]
fn speedups_are_bounded_and_ordered_sensibly() {
    for k in suite() {
        let t1 = estimate_timing(&k.program, &MachineConfig::new(1, 32)).unwrap();
        let mut prev_cycles = u64::MAX;
        for n in [2usize, 4, 8, 16] {
            let tn = estimate_timing(&k.program, &MachineConfig::new(n, 32)).unwrap();
            let s = tn.speedup_over(&t1);
            assert!(
                s <= n as f64 + 1e-9,
                "{}: speedup {s:.2} exceeds {n} PEs",
                k.code
            );
            // More PEs never make the paper's machine *slower* than 1 PE by
            // more than the communication overhead allows; sanity-bound it.
            assert!(s > 0.05, "{}: pathological slowdown {s:.3}", k.code);
            // Makespan is weakly improving for the embarrassingly parallel
            // classes.
            if matches!(k.class_abbrev(), "MD") {
                assert!(tn.total_cycles <= prev_cycles, "{}", k.code);
                prev_cycles = tn.total_cycles;
            }
        }
    }
}

#[test]
fn matched_class_speedup_is_nearly_linear() {
    // K14 (matched, n=1001 → 32 pages) has enough pages to feed 8 PEs;
    // K22's official size (n=101 → 4 pages) caps at 4-way parallelism,
    // which is itself worth asserting: parallelism is bounded by pages.
    let k14 = suite().into_iter().find(|k| k.code == "K14").unwrap();
    let t1 = estimate_timing(&k14.program, &MachineConfig::new(1, 32)).unwrap();
    let t8 = estimate_timing(&k14.program, &MachineConfig::new(8, 32)).unwrap();
    let s = t8.speedup_over(&t1);
    assert!(s > 6.0, "matched loop should scale: {s:.2} on 8 PEs");

    let k22 = suite().into_iter().find(|k| k.code == "K22").unwrap();
    let t1 = estimate_timing(&k22.program, &MachineConfig::new(1, 32)).unwrap();
    let t8 = estimate_timing(&k22.program, &MachineConfig::new(8, 32)).unwrap();
    let s = t8.speedup_over(&t1);
    assert!(
        (2.0..=4.0).contains(&s),
        "4 pages bound K22's parallelism to ≤4: {s:.2}"
    );
}

#[test]
fn serial_recurrence_exposes_pipeline_limit() {
    // K5's chain has a true dependence every iteration: adding PEs cannot
    // help beyond overlapping the per-page pipeline fill.
    let k = suite().into_iter().find(|k| k.code == "K5").unwrap();
    let t1 = estimate_timing(&k.program, &MachineConfig::new(1, 32)).unwrap();
    let t16 = estimate_timing(&k.program, &MachineConfig::new(16, 32)).unwrap();
    let s = t16.speedup_over(&t1);
    assert!(s < 2.0, "a serial chain cannot scale: {s:.2}");
    assert!(
        t16.stall_cycles.iter().sum::<u64>() > 0,
        "PEs must have stalled"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Expansion always yields a single-assignment program whose last
    /// version holds the von Neumann result of the reuse chain.
    #[test]
    fn expansion_roundtrip_on_generated_reuse_chains(
        n in 8usize..128,
        sweeps in 1usize..5,
        mult in 1u32..4,
    ) {
        let mult = mult as f64;
        let mut b = ProgramBuilder::new("reuse");
        let x = b.input("X", &[n], InitPattern::Linear { base: 1.0, step: 0.5 });
        for s in 0..sweeps {
            b.nest(format!("sweep{s}"), &[("k", 0, n as i64 - 1)], |nb| {
                nb.assign(x, [iv(0)], nb.read(x, [iv(0)]) * mult);
            });
        }
        let p = b.finish();
        prop_assert_eq!(verify_single_assignment(&p), sweeps == 0);
        let c = convert_to_sa(&p, SsaMode::Expand).expect("expandable");
        prop_assert_eq!(c.versions_added, sweeps);
        prop_assert!(verify_single_assignment(&c.program));
        let r = interpret(&c.program).expect("converted runs");
        let last = if sweeps == 0 {
            sapp::ir::ArrayId(0)
        } else {
            c.program.array_id(&format!("X@{sweeps}")).expect("last version")
        };
        for k in 0..n {
            let want = (1.0 + 0.5 * k as f64) * mult.powi(sweeps as i32);
            let got = *r.arrays[last.0].read(k).unwrap().unwrap();
            prop_assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
        }
        // The converted program also runs distributed.
        let rep = simulate(&c.program, &MachineConfig::new(4, 16)).expect("sim");
        prop_assert_eq!(rep.stats.writes(), (n * sweeps) as u64);
    }

    /// Reinit conversion round-trips on disjoint rewrite programs and
    /// charges exactly 2·(N−1) messages per inserted phase.
    #[test]
    fn reinit_roundtrip_counts_protocol_messages(
        n in 16usize..128,
        rewrites in 1usize..4,
        n_pes in 2usize..9,
    ) {
        let mut b = ProgramBuilder::new("rewrite");
        let src = b.input("SRC", &[n], InitPattern::Wavy);
        let dst = b.input("DST", &[n], InitPattern::Zero);
        for s in 0..rewrites {
            let w = (s + 1) as f64;
            b.nest(format!("w{s}"), &[("k", 0, n as i64 - 1)], |nb| {
                nb.assign(dst, [iv(0)], nb.read(src, [iv(0)]) * w);
            });
        }
        let p = b.finish();
        let c = convert_to_sa(&p, SsaMode::Reinit).expect("reinit-convertible");
        prop_assert_eq!(c.reinits_added, rewrites);
        prop_assert!(verify_single_assignment(&c.program));
        let rep = simulate(&c.program, &MachineConfig::new(n_pes, 16)).expect("sim");
        prop_assert_eq!(
            rep.stats.reinit_messages,
            (rewrites * 2 * (n_pes - 1)) as u64
        );
    }
}
