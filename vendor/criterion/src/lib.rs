//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is timed
//! with `std::time::Instant` over an adaptively chosen iteration count and
//! reported as median ns/iter on stdout — enough to compare hot paths
//! before and after a change, without the real crate's statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name,
            sample_size,
        }
    }

    /// Bench a standalone function (no group).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark under this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark under this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (kept for API compatibility; groups report eagerly).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter value alone.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Build an id from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples of an adaptively chosen
    /// batch size (targets ≥ ~1 ms per sample to beat timer resolution).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let (lo, hi) = (b.samples[0], b.samples[b.samples.len() - 1]);
    println!(
        "{label:<40} {:>12.1} ns/iter  [{:.1} .. {:.1}]",
        median.as_nanos() as f64,
        lo.as_nanos() as f64,
        hi.as_nanos() as f64
    );
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
