//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only the `channel` subset used by this workspace is provided: unbounded
//! MPSC channels with cloneable senders, delegating to `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer single-consumer unbounded channels.

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_cloned_senders() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            drop((tx, tx2));
            assert!(rx.recv().is_err());
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded::<usize>();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<usize> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
