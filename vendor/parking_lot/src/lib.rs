//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free,
//! guard-returning API: `Mutex::lock` yields the guard directly (poisoning
//! is swallowed — a poisoned lock simply hands back its data), and
//! `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.

use std::ops::{Deref, DerefMut};

/// Mutual exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning its data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable whose `wait` re-borrows the guard in place.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; move it out and back in place.
        // SAFETY: `ptr::read` duplicates the guard, but the original slot is
        // overwritten before anyone can observe it, and our single-mutex
        // usage never triggers std's mismatched-mutex panic in between.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = self.0.wait(inner).unwrap_or_else(|p| p.into_inner());
            std::ptr::write(&mut guard.0, inner);
        }
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut done = m.lock();
                while !*done {
                    cv.wait(&mut done);
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }
}
