//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / `Just` / mapped / union strategies,
//! `collection::vec`, `sample::select`, `bool::ANY`, and the
//! `prop_assert*` macros. Generation is driven by a deterministic
//! SplitMix64 RNG seeded from the test name, so failures reproduce across
//! runs and machines. There is no shrinking: a failing case panics with
//! the generated values rather than a minimized counterexample.

pub mod test_runner {
    //! Test configuration, case errors, and the deterministic RNG.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps simulation-heavy
            // properties fast while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case (carries the failure message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from anything displayable (usable as
        /// `map_err(TestCaseError::fail)`).
        pub fn fail<E: std::fmt::Display>(e: E) -> Self {
            TestCaseError(e.to_string())
        }

        /// Alias of [`TestCaseError::fail`] matching the real crate.
        pub fn reject<E: std::fmt::Display>(e: E) -> Self {
            Self::fail(e)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG seeded from the test's name.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Spans here always fit u64 (test ranges are small).
                    let off = rng.below(span as u64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = rng.below(span as u64) as i128;
                    (start as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s of `elem` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// Vector of values from `elem`, length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice among pre-built values.
    pub struct Select<T: Clone>(Vec<T>);

    /// Pick one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform true/false.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each named argument is drawn from its strategy
/// for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            // `$meta` includes the caller's own `#[test]` attribute.
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let desc = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = result {
                        panic!(
                            "property `{}` failed at case {case}/{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            config.cases,
                            e.0,
                            desc
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0usize..10, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_select_produce_members(
            x in prop_oneof![Just(1u32), Just(2), (10u32..13).prop_map(|v| v)],
            y in prop::sample::select(vec![5usize, 6, 7]),
            b in prop::bool::ANY,
        ) {
            prop_assert!(x == 1 || x == 2 || (10..13).contains(&x));
            prop_assert!((5..=7).contains(&y));
            prop_assert!(usize::from(b) <= 1);
        }
    }
}
